//! Figure 5: peak GFlop/s vs bond dimension, annotated with node counts.
//!
//! Left panel (paper): spins with the list algorithm on Blue Waters up to
//! 3.1 TFlop/s at 256 nodes. Right panel: electrons with list and
//! sparse-sparse on Stampede2 peaking near 200 GFlop/s. Here both panels
//! are produced from the calibrated model at the paper's bond dimensions,
//! plus live laptop-scale measurements through the simulated runtime.

use tt_bench::{grow_state, measure_middle_step, model_step, System, Table, PAPER_MS};
use tt_blocks::Algorithm;
use tt_dist::{ExecMode, Executor, Machine};

fn main() {
    println!("=== Fig. 5 (model, paper scale): peak GFlop/s vs m ===\n");
    let mut t = Table::new(&["system", "algo", "machine", "m", "nodes", "GFlop/s"]);
    // paper's annotated node counts per m (spins BW: 16..256)
    let spin_nodes = [16usize, 16, 64, 128, 256];
    for (&m, &nodes) in PAPER_MS.iter().zip(&spin_nodes) {
        let p = model_step(
            System::Spins,
            Algorithm::List,
            &Machine::blue_waters(16),
            nodes,
            m,
        );
        t.row(vec![
            "spins".into(),
            "list".into(),
            "BlueWaters".into(),
            m.to_string(),
            nodes.to_string(),
            format!("{:.1}", p.gflops()),
        ]);
    }
    let elec_nodes = [1usize, 2, 4, 8, 8];
    for (&m, &nodes) in PAPER_MS.iter().zip(&elec_nodes) {
        for algo in [Algorithm::List, Algorithm::SparseSparse] {
            let p = model_step(System::Electrons, algo, &Machine::stampede2(64), nodes, m);
            t.row(vec![
                "electrons".into(),
                algo.to_string(),
                "Stampede2".into(),
                m.to_string(),
                nodes.to_string(),
                format!("{:.1}", p.gflops()),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig5_model");

    println!("\n=== Fig. 5 (live, laptop scale): measured rates ===\n");
    let mut lt = Table::new(&[
        "system",
        "algo",
        "ranks",
        "m",
        "flops",
        "sim GF/s",
        "wall GF/s",
    ]);
    let lat = System::Spins.default_lattice();
    let warm = grow_state(System::Spins, &lat, 32);
    for (nodes, ppn) in [(1usize, 1usize), (1, 4), (2, 4)] {
        let machine = if ppn == 1 {
            Machine::local()
        } else {
            Machine::blue_waters(ppn)
        };
        let exec = Executor::with_machine(machine, nodes, ExecMode::Sequential);
        let step = measure_middle_step(&warm, &exec, Algorithm::List);
        lt.row(vec![
            "spins".into(),
            "list".into(),
            format!("{}", nodes * ppn),
            "32".into(),
            step.flops.to_string(),
            format!("{:.3}", step.flops as f64 / step.sim.total() / 1e9),
            format!("{:.3}", step.flops as f64 / step.wall_seconds / 1e9),
        ]);
    }
    lt.print();
    let _ = lt.write_csv("fig5_live");
    println!("\npaper reference: 3.1 TFlop/s (spins, BW, 256 nodes); 198 GFlop/s (electrons, S2)");
}

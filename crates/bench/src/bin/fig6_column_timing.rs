//! Figure 6: time spent per column of sites over a full sweep.
//!
//! The paper validates that all non-edge columns of the 20×10 cylinder
//! cost the same (justifying benchmarking only the middle column). The
//! same flat-middle/cheap-edge shape appears on the scaled cylinder.

use dmrg::{DavidsonOptions, Dmrg, Schedule, SweepParams};
use tt_bench::{grow_state, System, Table};
use tt_blocks::Algorithm;
use tt_dist::Executor;

fn main() {
    let lx = 8;
    let ly = 4;
    let m = 32;
    println!("=== Fig. 6: per-column time of one full sweep ({lx}x{ly}, m={m}) ===\n");
    let lat = System::Spins.lattice(lx, ly);
    let warm = grow_state(System::Spins, &lat, m);
    let exec = Executor::local();
    let driver = Dmrg::new(&exec, Algorithm::List, &warm.mpo);
    let mut mps = warm.mps.clone();
    let schedule = Schedule {
        sweeps: vec![SweepParams {
            max_m: m,
            cutoff: 1e-12,
            davidson: DavidsonOptions {
                max_iter: 4,
                max_subspace: 2,
                tol: 1e-10,
                seed: 5,
            },
            noise: 0.0,
        }],
    };
    let run = driver.run(&mut mps, &schedule).expect("sweep runs");
    let sweep = &run.sweeps[0];

    let mut per_column = vec![0.0f64; lx];
    for rec in &sweep.sites {
        per_column[lat.column(rec.site)] += rec.seconds;
    }
    let mut t = Table::new(&["column", "seconds", "bar"]);
    let max = per_column.iter().cloned().fold(0.0, f64::max);
    for (c, &s) in per_column.iter().enumerate() {
        let bar = "#".repeat((40.0 * s / max.max(1e-30)) as usize);
        t.row(vec![c.to_string(), format!("{s:.4}"), bar]);
    }
    t.print();
    let _ = t.write_csv("fig6");

    // shape check: middle columns within a factor ~2 of each other, edges
    // cheaper
    let mid: Vec<f64> = per_column[2..lx - 2].to_vec();
    let mid_max = mid.iter().cloned().fold(0.0, f64::max);
    let mid_min = mid.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nmiddle-column spread: max/min = {:.2} (paper: non-edge columns share timings)",
        mid_max / mid_min
    );
    println!(
        "edge/middle: {:.2} (first column is cheaper — smaller bonds near the boundary)",
        per_column[0] / mid_max
    );
}

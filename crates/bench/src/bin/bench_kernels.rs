//! Kernel performance baseline: times the contraction hot-path kernels and
//! writes `BENCH_kernels.json` (GFlop/s per kernel/size) so future PRs can
//! diff perf against this one.
//!
//! Usage: `cargo run --release -p tt-bench --bin bench_kernels [-- --smoke]`
//!
//! `--smoke` shrinks sizes/reps to a few hundred milliseconds for CI; the
//! full run includes the 512×512×512 `f64` case used as this PR's
//! acceptance gate (packed GEMM ≥ 2× the seed scalar kernel).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tt_dist::{ExecMode, Executor, Machine};
use tt_tensor::{DenseTensor, SparseTensor};

/// The seed repo's scalar cache-blocked `(i,k,j)` GEMM — kept here verbatim
/// as the perf reference the packed kernel is measured against.
fn seed_gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const MC: usize = 64;
    const KC: usize = 128;
    const NC: usize = 512;
    for ib in (0..m).step_by(MC) {
        let imax = (ib + MC).min(m);
        for kb in (0..k).step_by(KC) {
            let kmax = (kb + KC).min(k);
            for jb in (0..n).step_by(NC) {
                let jmax = (jb + NC).min(n);
                for i in ib..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + jb..i * n + jmax];
                    for kk in kb..kmax {
                        let aik = arow[kk];
                        let brow = &b[kk * n + jb..kk * n + jmax];
                        for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                            *cj += aik * bj;
                        }
                    }
                }
            }
        }
    }
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Entry {
    kernel: &'static str,
    size: String,
    flops: f64,
    secs: f64,
}

impl Entry {
    fn gflops(&self) -> f64 {
        self.flops / self.secs / 1e9
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gemm_sizes: &[usize] = if smoke { &[64, 128] } else { &[128, 256, 512] };
    let reps = if smoke { 3 } else { 5 };
    let mut entries: Vec<Entry> = Vec::new();
    let mut rng = StdRng::seed_from_u64(7);

    // --- dense GEMM: packed register-tiled vs seed scalar loop -----------
    for &s in gemm_sizes {
        let a = DenseTensor::<f64>::random([s, s], &mut rng);
        let b = DenseTensor::<f64>::random([s, s], &mut rng);
        let flops = 2.0 * (s as f64).powi(3);
        let mut c = vec![0.0f64; s * s];

        let secs = best_of(reps, || {
            c.iter_mut().for_each(|x| *x = 0.0);
            tt_tensor::gemm::gemm_acc_slices(s, s, s, a.data(), b.data(), &mut c);
        });
        entries.push(Entry {
            kernel: "gemm_packed",
            size: format!("{s}x{s}x{s}"),
            flops,
            secs,
        });

        let secs = best_of(reps, || {
            c.iter_mut().for_each(|x| *x = 0.0);
            seed_gemm_acc(s, s, s, a.data(), b.data(), &mut c);
        });
        entries.push(Entry {
            kernel: "gemm_seed_scalar",
            size: format!("{s}x{s}x{s}"),
            flops,
            secs,
        });
    }

    // --- transposed-layout GEMM (packing absorbs the transpose) ----------
    {
        let s = if smoke { 128 } else { 512 };
        let a = DenseTensor::<f64>::random([s, s], &mut rng);
        let b = DenseTensor::<f64>::random([s, s], &mut rng);
        let flops = 2.0 * (s as f64).powi(3);
        let secs = best_of(reps, || {
            tt_tensor::gemm(&a, tt_tensor::Layout::Transposed, &b, tt_tensor::Layout::Normal)
                .unwrap();
        });
        entries.push(Entry {
            kernel: "gemm_at_b",
            size: format!("{s}x{s}x{s}"),
            flops,
            secs,
        });
    }

    // --- GEMV fast path (Davidson matvec shape) --------------------------
    {
        let (m, k) = if smoke { (256, 256) } else { (1024, 1024) };
        let a = DenseTensor::<f64>::random([m, k], &mut rng);
        let x = DenseTensor::<f64>::random([k, 1], &mut rng);
        let flops = 2.0 * m as f64 * k as f64;
        let secs = best_of(reps * 4, || {
            tt_tensor::gemm_f64(&a, &x).unwrap();
        });
        entries.push(Entry {
            kernel: "gemv_fused_n1",
            size: format!("{m}x{k}x1"),
            flops,
            secs,
        });
    }

    // --- sparse kernels through the executor (volume-balanced split) -----
    // A rectangular, row-skewed sparse operand: the shape that used to
    // load-imbalance the uniform row split.
    {
        let (m, k, n) = if smoke { (96, 48, 24) } else { (512, 128, 64) };
        let dense = DenseTensor::<f64>::from_fn([m, k], |idx| {
            // quadratically front-loaded density: row 0 full, last rows empty
            let cutoff = k - (k * idx[0] * idx[0]) / (m * m).max(1);
            if idx[1] < cutoff {
                (idx[0] + idx[1]) as f64 / (m + k) as f64 - 0.5
            } else {
                0.0
            }
        });
        let sp = SparseTensor::from_dense(&dense, 0.0);
        let b = DenseTensor::<f64>::random([k, n], &mut rng);
        let sb = SparseTensor::from_dense(&DenseTensor::<f64>::random([k, n], &mut rng), 0.5);
        let sd_flops = 2.0 * sp.nnz() as f64 * n as f64;

        for (mode, label_sd, label_ss) in [
            (ExecMode::Sequential, "sd_contract_seq", "ss_contract_seq"),
            (ExecMode::Threaded, "sd_contract_threaded", "ss_contract_threaded"),
        ] {
            let exec = Executor::with_machine(Machine::local(), 1, mode);
            let secs = best_of(reps, || {
                exec.contract_sd("ik,kj->ij", &sp, &b).unwrap();
            });
            entries.push(Entry {
                kernel: label_sd,
                size: format!("{m}x{k}x{n}"),
                flops: sd_flops,
                secs,
            });
            let secs = best_of(reps, || {
                exec.contract_ss("ik,kj->ij", &sp, &sb, None).unwrap();
            });
            entries.push(Entry {
                kernel: label_ss,
                size: format!("{m}x{k}x{n}"),
                flops: sd_flops * 0.5, // nominal; ss work depends on overlap
                secs,
            });
        }
    }

    // --- report + JSON ----------------------------------------------------
    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        println!(
            "{:<22} {:>14}  {:>8.2} GFlop/s  ({:.3e} s)",
            e.kernel,
            e.size,
            e.gflops(),
            e.secs
        );
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"size\": \"{}\", \"gflops\": {:.4}, \"seconds\": {:.6e}}}{}\n",
            e.kernel,
            e.size,
            e.gflops(),
            e.secs,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json ({} entries)", entries.len());

    // the acceptance gate this PR ships under (informational at runtime)
    if !smoke {
        let g = |k: &str| {
            entries
                .iter()
                .find(|e| e.kernel == k && e.size == "512x512x512")
                .map(Entry::gflops)
                .unwrap_or(0.0)
        };
        let (packed, seed) = (g("gemm_packed"), g("gemm_seed_scalar"));
        println!(
            "packed/seed speedup at 512^3: {:.2}x",
            packed / seed.max(1e-12)
        );
    }
}

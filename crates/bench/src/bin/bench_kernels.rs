//! Kernel performance baseline and CI regression gate.
//!
//! Times the contraction hot-path kernels, writes `BENCH_kernels.json`
//! (GFlop/s per kernel/size), and — with `--check <baseline.json>` —
//! compares the measured numbers against a committed baseline and **fails
//! (exit 1) if any kernel regresses more than 30% in GFlop/s**, printing a
//! per-kernel diff table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tt-bench --bin bench_kernels                # full run, writes baseline
//! cargo run --release -p tt-bench --bin bench_kernels -- --smoke    # CI-sized run
//! cargo run --release -p tt-bench --bin bench_kernels -- --smoke --check BENCH_kernels.json
//! ```
//!
//! The full run's sizes are a superset of the smoke sizes, so a smoke run
//! always finds its `(kernel, size)` pairs in a committed full baseline.
//! The full run also includes the 512³ `f64` case used as PR 2's
//! acceptance gate (packed GEMM ≥ 2× the seed scalar kernel) and the
//! sparse *crossover* cases: the small sparse size sits below
//! `SPARSE_PAR_MIN_FLOPS` (threaded stays on one worker — the fix for the
//! threaded-slower-than-sequential regression this baseline recorded),
//! the large ones sit above it and engage the pool.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tt_dist::{ExecMode, Executor, Machine};
use tt_tensor::{DenseTensor, SparseTensor};

/// GFlop/s regression a kernel may show against the baseline before the
/// check fails (CI runners are noisy; 30% is the agreed gate).
const MAX_REGRESSION: f64 = 0.30;

/// The seed repo's scalar cache-blocked `(i,k,j)` GEMM — kept here verbatim
/// as the perf reference the packed kernel is measured against.
fn seed_gemm_acc(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    const MC: usize = 64;
    const KC: usize = 128;
    const NC: usize = 512;
    for ib in (0..m).step_by(MC) {
        let imax = (ib + MC).min(m);
        for kb in (0..k).step_by(KC) {
            let kmax = (kb + KC).min(k);
            for jb in (0..n).step_by(NC) {
                let jmax = (jb + NC).min(n);
                for i in ib..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + jb..i * n + jmax];
                    for kk in kb..kmax {
                        let aik = arow[kk];
                        let brow = &b[kk * n + jb..kk * n + jmax];
                        for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                            *cj += aik * bj;
                        }
                    }
                }
            }
        }
    }
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

struct Entry {
    kernel: &'static str,
    size: String,
    flops: f64,
    secs: f64,
}

impl Entry {
    fn gflops(&self) -> f64 {
        self.flops / self.secs / 1e9
    }
}

/// A `(kernel, size, gflops)` triple parsed back from a baseline file.
struct BaselineEntry {
    kernel: String,
    size: String,
    gflops: f64,
}

/// Extract the string value of `"key": "…"` from one JSON line (the
/// baseline is this binary's own single-entry-per-line output; no general
/// JSON parser is vendored, so parse exactly that shape).
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key": …` from one JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load_baseline(path: &str) -> Vec<BaselineEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                kernel: json_str(line, "kernel")?,
                size: json_str(line, "size")?,
                gflops: json_num(line, "gflops")?,
            })
        })
        .collect()
}

/// Compare measured entries against the baseline. Returns `false` when any
/// matched kernel regressed beyond [`MAX_REGRESSION`] (or nothing matched).
fn check_against_baseline(entries: &[Entry], baseline: &[BaselineEntry]) -> bool {
    println!(
        "\n{:<24} {:>14} {:>12} {:>12} {:>8}  status",
        "kernel", "size", "baseline", "measured", "delta"
    );
    let mut matched = 0usize;
    let mut regressed = 0usize;
    for e in entries {
        let Some(base) = baseline
            .iter()
            .find(|b| b.kernel == e.kernel && b.size == e.size)
        else {
            println!(
                "{:<24} {:>14} {:>12} {:>12.2} {:>8}  new (no baseline)",
                e.kernel,
                e.size,
                "-",
                e.gflops(),
                "-"
            );
            continue;
        };
        matched += 1;
        let delta = e.gflops() / base.gflops - 1.0;
        let slow = delta < -MAX_REGRESSION;
        if slow {
            regressed += 1;
        }
        println!(
            "{:<24} {:>14} {:>12.2} {:>12.2} {:>+7.1}%  {}",
            e.kernel,
            e.size,
            base.gflops,
            e.gflops(),
            100.0 * delta,
            if slow { "REGRESSED" } else { "ok" }
        );
    }
    if matched == 0 {
        println!("\nno (kernel, size) pairs matched the baseline — refusing to pass");
        return false;
    }
    if regressed > 0 {
        println!(
            "\n{regressed}/{matched} kernels regressed more than {:.0}% below baseline",
            100.0 * MAX_REGRESSION
        );
        return false;
    }
    println!(
        "\nall {matched} matched kernels within {:.0}% of baseline",
        100.0 * MAX_REGRESSION
    );
    true
}

/// The quadratically front-loaded sparse operand every sparse bench uses:
/// row 0 full, last rows empty — the shape that load-imbalanced the old
/// uniform row split.
fn skewed_sparse(m: usize, k: usize) -> SparseTensor<f64> {
    let dense = DenseTensor::<f64>::from_fn([m, k], |idx| {
        let cutoff = k - (k * idx[0] * idx[0]) / (m * m).max(1);
        if idx[1] < cutoff {
            (idx[0] + idx[1]) as f64 / (m + k) as f64 - 0.5
        } else {
            0.0
        }
    });
    SparseTensor::from_dense(&dense, 0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--check needs a baseline path");
            std::process::exit(1);
        })
    });

    // full sizes are supersets of smoke sizes so a smoke --check always
    // finds its pairs in a committed full baseline
    let gemm_sizes: &[usize] = if smoke {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    let at_b_sizes: &[usize] = if smoke { &[128] } else { &[128, 512] };
    let gemv_sizes: &[(usize, usize)] = if smoke {
        &[(256, 256)]
    } else {
        &[(256, 256), (1024, 1024)]
    };
    // (m, k, n, reps): the small size sits below SPARSE_PAR_MIN_FLOPS
    // (threaded stays on one worker — sub-millisecond kernels are too
    // noisy for a 30% gate, so the smoke case is the ~3 ms 512×128×64),
    // the larger ones sit above it and engage the pool
    let sd_sizes: &[(usize, usize, usize, usize)] = if smoke {
        &[(512, 128, 64, 10)]
    } else {
        &[(512, 128, 64, 10), (2048, 512, 256, 3)]
    };
    let ss_sizes: &[(usize, usize, usize, usize)] = if smoke {
        &[(512, 128, 64, 5)]
    } else {
        &[(512, 128, 64, 5), (1024, 256, 128, 2)]
    };
    let reps = 10;
    let mut entries: Vec<Entry> = Vec::new();
    let mut rng = StdRng::seed_from_u64(7);

    // --- dense GEMM: packed register-tiled vs seed scalar loop -----------
    for &s in gemm_sizes {
        let a = DenseTensor::<f64>::random([s, s], &mut rng);
        let b = DenseTensor::<f64>::random([s, s], &mut rng);
        let flops = 2.0 * (s as f64).powi(3);
        let mut c = vec![0.0f64; s * s];

        let secs = best_of(reps, || {
            c.iter_mut().for_each(|x| *x = 0.0);
            tt_tensor::gemm::gemm_acc_slices(s, s, s, a.data(), b.data(), &mut c);
        });
        entries.push(Entry {
            kernel: "gemm_packed",
            size: format!("{s}x{s}x{s}"),
            flops,
            secs,
        });

        let secs = best_of(reps, || {
            c.iter_mut().for_each(|x| *x = 0.0);
            seed_gemm_acc(s, s, s, a.data(), b.data(), &mut c);
        });
        entries.push(Entry {
            kernel: "gemm_seed_scalar",
            size: format!("{s}x{s}x{s}"),
            flops,
            secs,
        });
    }

    // --- transposed-layout GEMM (packing absorbs the transpose) ----------
    for &s in at_b_sizes {
        let a = DenseTensor::<f64>::random([s, s], &mut rng);
        let b = DenseTensor::<f64>::random([s, s], &mut rng);
        let flops = 2.0 * (s as f64).powi(3);
        let secs = best_of(reps, || {
            tt_tensor::gemm(
                &a,
                tt_tensor::Layout::Transposed,
                &b,
                tt_tensor::Layout::Normal,
            )
            .unwrap();
        });
        entries.push(Entry {
            kernel: "gemm_at_b",
            size: format!("{s}x{s}x{s}"),
            flops,
            secs,
        });
    }

    // --- GEMV fast path (Davidson matvec shape) --------------------------
    for &(m, k) in gemv_sizes {
        let a = DenseTensor::<f64>::random([m, k], &mut rng);
        let x = DenseTensor::<f64>::random([k, 1], &mut rng);
        let flops = 2.0 * m as f64 * k as f64;
        let secs = best_of(reps * 4, || {
            tt_tensor::gemm_f64(&a, &x).unwrap();
        });
        entries.push(Entry {
            kernel: "gemv_fused_n1",
            size: format!("{m}x{k}x1"),
            flops,
            secs,
        });
    }

    // --- sparse kernels through the executor -----------------------------
    // sequential vs threaded at each size: below the work-volume threshold
    // both run the same single-worker path; above it the threaded executor
    // fans volume-balanced buckets over the pool (the crossover)
    for &(m, k, n, reps) in sd_sizes {
        let sp = skewed_sparse(m, k);
        let b = DenseTensor::<f64>::random([k, n], &mut rng);
        let sd_flops = 2.0 * sp.nnz() as f64 * n as f64;
        for (mode, label) in [
            (ExecMode::Sequential, "sd_contract_seq"),
            (ExecMode::Threaded, "sd_contract_threaded"),
        ] {
            let exec = Executor::with_machine(Machine::local(), 1, mode);
            let secs = best_of(reps, || {
                exec.contract_sd("ik,kj->ij", &sp, &b).unwrap();
            });
            entries.push(Entry {
                kernel: label,
                size: format!("{m}x{k}x{n}"),
                flops: sd_flops,
                secs,
            });
        }
    }
    for &(m, k, n, reps) in ss_sizes {
        let sp = skewed_sparse(m, k);
        let sb = SparseTensor::from_dense(&DenseTensor::<f64>::random([k, n], &mut rng), 0.5);
        let sd_flops = 2.0 * sp.nnz() as f64 * n as f64;
        for (mode, label) in [
            (ExecMode::Sequential, "ss_contract_seq"),
            (ExecMode::Threaded, "ss_contract_threaded"),
        ] {
            let exec = Executor::with_machine(Machine::local(), 1, mode);
            let secs = best_of(reps, || {
                exec.contract_ss("ik,kj->ij", &sp, &sb, None).unwrap();
            });
            entries.push(Entry {
                kernel: label,
                size: format!("{m}x{k}x{n}"),
                flops: sd_flops * 0.5, // nominal; ss work depends on overlap
                secs,
            });
        }
    }

    // --- report -----------------------------------------------------------
    for e in &entries {
        println!(
            "{:<24} {:>14}  {:>8.2} GFlop/s  ({:.3e} s)",
            e.kernel,
            e.size,
            e.gflops(),
            e.secs
        );
    }

    if let Some(path) = check_path {
        // regression-gate mode: compare, do not overwrite the baseline
        let baseline = load_baseline(&path);
        if !check_against_baseline(&entries, &baseline) {
            std::process::exit(1);
        }
        return;
    }

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"size\": \"{}\", \"gflops\": {:.4}, \"seconds\": {:.6e}}}{}\n",
            e.kernel,
            e.size,
            e.gflops(),
            e.secs,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    // a smoke run must never clobber the committed full baseline — its
    // entries are a strict subset, and a subset baseline would silently
    // shrink what the CI gate covers
    let out = if smoke {
        "BENCH_kernels.smoke.json"
    } else {
        "BENCH_kernels.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out} ({} entries)", entries.len());

    // the acceptance gate PR 2 shipped under (informational at runtime)
    if !smoke {
        let g = |k: &str| {
            entries
                .iter()
                .find(|e| e.kernel == k && e.size == "512x512x512")
                .map(Entry::gflops)
                .unwrap_or(0.0)
        };
        let (packed, seed) = (g("gemm_packed"), g("gemm_seed_scalar"));
        println!(
            "packed/seed speedup at 512^3: {:.2}x",
            packed / seed.max(1e-12)
        );
    }
}

//! Kernel performance baseline and CI regression gate.
//!
//! Times the contraction hot-path kernels, writes `BENCH_kernels.json`
//! (GFlop/s per kernel/size), and — with `--check <baseline.json>` —
//! compares the measured numbers against a committed baseline and **fails
//! (exit 1) if any kernel regresses more than 30% in GFlop/s**, printing a
//! per-kernel diff table.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p tt-bench --bin bench_kernels                # full run, writes baseline
//! cargo run --release -p tt-bench --bin bench_kernels -- --smoke    # CI-sized run
//! cargo run --release -p tt-bench --bin bench_kernels -- --smoke --check BENCH_kernels.json
//! ```
//!
//! The full run's sizes are a superset of the smoke sizes, so a smoke run
//! always finds its `(kernel, size)` pairs in a committed full baseline.
//! The full run also includes the 512³ `f64` case used as PR 2's
//! acceptance gate (packed GEMM ≥ 2× the seed scalar kernel) and the
//! sparse *crossover* cases: the small sparse size sits below
//! `SPARSE_PAR_MIN_FLOPS` (threaded stays on one worker), the large ones
//! sit above it and engage the pool. Sequential and threaded sparse runs
//! are timed *alternating inside one rep loop, swapping which mode goes
//! first each rep* — timing all reps of one mode before the other charged
//! whichever block ran first with the cold cache/frequency state (an
//! earlier baseline recorded a phantom 1.6× "threaded regression" on an
//! identical code path that way), and even alternating with a fixed order
//! leaves the second slot of every pair systematically slower on a busy
//! or frequency-drifting machine. GFlop/s rates use best-of timing; the
//! threaded-parity assertion instead uses the median of paired ratios
//! (see [`pair_ratios`]), which both slot bias and one-off hiccups
//! cancel out of.
//!
//! Baselines must be regenerated on an idle machine — see `BENCHING.md`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tt_dist::{ExecMode, Executor, Machine};
use tt_tensor::{Complex64, DenseTensor, Scalar, SparseTensor};

/// GFlop/s regression a kernel may show against the baseline before the
/// check fails (CI runners are noisy; 30% is the agreed gate).
const MAX_REGRESSION: f64 = 0.30;

/// How far threaded may fall behind sequential at the same size before
/// the check fails. Below the work-volume threshold both modes run the
/// same single-worker code path; above it the pool must at least break
/// even.
const MAX_THREADED_DEFICIT: f64 = 0.05;

/// The seed repo's scalar cache-blocked `(i,k,j)` GEMM — kept here verbatim
/// (generalized over the scalar type) as the perf reference the packed
/// kernel is measured against.
fn seed_gemm_acc<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    const MC: usize = 64;
    const KC: usize = 128;
    const NC: usize = 512;
    for ib in (0..m).step_by(MC) {
        let imax = (ib + MC).min(m);
        for kb in (0..k).step_by(KC) {
            let kmax = (kb + KC).min(k);
            for jb in (0..n).step_by(NC) {
                let jmax = (jb + NC).min(n);
                for i in ib..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + jb..i * n + jmax];
                    for kk in kb..kmax {
                        let aik = arow[kk];
                        let brow = &b[kk * n + jb..kk * n + jmax];
                        for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                            *cj += aik * bj;
                        }
                    }
                }
            }
        }
    }
}

/// Best-of-`reps` wall time of `f` in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Time `seq` and `thr` back to back for `reps` reps, swapping which mode
/// gets the first slot each rep (on a frequency-drifting machine the
/// second call of a pair runs measurably slower; a fixed order reads that
/// slot bias as a mode deficit). Returns the per-rep wall times.
fn time_mode_pairs(
    reps: usize,
    mut seq: impl FnMut(),
    mut thr: impl FnMut(),
) -> (Vec<f64>, Vec<f64>) {
    let mut seq_times = Vec::with_capacity(reps);
    let mut thr_times = Vec::with_capacity(reps);
    let take = |times: &mut Vec<f64>, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        times.push(t.elapsed().as_secs_f64());
    };
    for rep in 0..reps {
        if rep % 2 == 0 {
            take(&mut seq_times, &mut seq);
            take(&mut thr_times, &mut thr);
        } else {
            take(&mut thr_times, &mut thr);
            take(&mut seq_times, &mut seq);
        }
    }
    (seq_times, thr_times)
}

fn best_time(times: &[f64]) -> f64 {
    times.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Threaded/sequential rate ratios, robust to machine noise: each
/// consecutive pair of reps sums one first-slot and one second-slot sample
/// of each mode, cancelling slot bias and common-mode frequency drift.
/// Callers pool these across passes and judge parity on their median,
/// which rejects the one-off scheduler hiccups best-of timing is
/// sensitive to.
fn pair_ratios(seq_times: &[f64], thr_times: &[f64]) -> Vec<f64> {
    seq_times
        .chunks_exact(2)
        .zip(thr_times.chunks_exact(2))
        .map(|(s, t)| (s[0] + s[1]) / (t[0] + t[1]))
        .collect()
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[sorted.len() / 2]
}

/// A measured threaded-vs-sequential parity ratio at one sparse size.
struct ParitySample {
    kernel: &'static str,
    size: String,
    ratio: f64,
}

/// Pooled paired-ratio samples for one sparse size, accumulated across
/// round-robin passes.
struct ParityAcc {
    kernel: &'static str,
    size: String,
    ratios: Vec<f64>,
}

/// Min-merge a measurement: the kernel set runs in several round-robin
/// passes so every `(kernel, size)` samples more than one machine state
/// (on shared hardware the effective CPU speed drifts ±25% across
/// minutes — a single-window best-of bakes whichever state it hit into
/// the baseline, and the gate then flaps against runs that hit the
/// other). Best-of keeps the fastest sample across passes.
fn record(entries: &mut Vec<Entry>, kernel: &'static str, size: String, flops: f64, secs: f64) {
    if let Some(e) = entries
        .iter_mut()
        .find(|e| e.kernel == kernel && e.size == size)
    {
        e.secs = e.secs.min(secs);
    } else {
        entries.push(Entry {
            kernel,
            size,
            flops,
            secs,
        });
    }
}

/// Pool this pass's paired ratios into the accumulator for `(kernel, size)`.
fn record_parity(
    parity: &mut Vec<ParityAcc>,
    kernel: &'static str,
    size: String,
    ratios: Vec<f64>,
) {
    if let Some(p) = parity
        .iter_mut()
        .find(|p| p.kernel == kernel && p.size == size)
    {
        p.ratios.extend(ratios);
    } else {
        parity.push(ParityAcc {
            kernel,
            size,
            ratios,
        });
    }
}

struct Entry {
    kernel: &'static str,
    size: String,
    flops: f64,
    secs: f64,
}

impl Entry {
    fn gflops(&self) -> f64 {
        self.flops / self.secs / 1e9
    }
}

/// A `(kernel, size, gflops)` triple parsed back from a baseline file.
struct BaselineEntry {
    kernel: String,
    size: String,
    gflops: f64,
}

/// Extract the string value of `"key": "…"` from one JSON line (the
/// baseline is this binary's own single-entry-per-line output; no general
/// JSON parser is vendored, so parse exactly that shape).
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the numeric value of `"key": …` from one JSON line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn load_baseline(path: &str) -> Vec<BaselineEntry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                kernel: json_str(line, "kernel")?,
                size: json_str(line, "size")?,
                gflops: json_num(line, "gflops")?,
            })
        })
        .collect()
}

/// Sequential/threaded parity at every measured sparse size: flag any
/// paired-ratio sample (see [`pair_ratios`]) more than
/// [`MAX_THREADED_DEFICIT`] below 1.0. Returns `false` on any failure.
fn check_threaded_parity(parity: &[ParitySample]) -> bool {
    let mut ok = true;
    for p in parity {
        let bad = p.ratio < 1.0 - MAX_THREADED_DEFICIT;
        println!(
            "threaded parity {:<22} {:>14}: {:.2}x sequential  {}",
            p.kernel,
            p.size,
            p.ratio,
            if bad { "FAIL" } else { "ok" }
        );
        if bad {
            ok = false;
        }
    }
    ok
}

/// Compare measured entries against the baseline. Returns `false` when any
/// matched kernel regressed beyond [`MAX_REGRESSION`] (or nothing matched).
fn check_against_baseline(entries: &[Entry], baseline: &[BaselineEntry]) -> bool {
    println!(
        "\n{:<24} {:>14} {:>12} {:>12} {:>8}  status",
        "kernel", "size", "baseline", "measured", "delta"
    );
    let mut matched = 0usize;
    let mut regressed = 0usize;
    for e in entries {
        let Some(base) = baseline
            .iter()
            .find(|b| b.kernel == e.kernel && b.size == e.size)
        else {
            println!(
                "{:<24} {:>14} {:>12} {:>12.2} {:>8}  new (no baseline)",
                e.kernel,
                e.size,
                "-",
                e.gflops(),
                "-"
            );
            continue;
        };
        matched += 1;
        let delta = e.gflops() / base.gflops - 1.0;
        let slow = delta < -MAX_REGRESSION;
        if slow {
            regressed += 1;
        }
        println!(
            "{:<24} {:>14} {:>12.2} {:>12.2} {:>+7.1}%  {}",
            e.kernel,
            e.size,
            base.gflops,
            e.gflops(),
            100.0 * delta,
            if slow { "REGRESSED" } else { "ok" }
        );
    }
    if matched == 0 {
        println!("\nno (kernel, size) pairs matched the baseline — refusing to pass");
        return false;
    }
    if regressed > 0 {
        println!(
            "\n{regressed}/{matched} kernels regressed more than {:.0}% below baseline",
            100.0 * MAX_REGRESSION
        );
        return false;
    }
    println!(
        "\nall {matched} matched kernels within {:.0}% of baseline",
        100.0 * MAX_REGRESSION
    );
    true
}

/// The quadratically front-loaded sparse operand every sparse bench uses:
/// row 0 full, last rows empty — the shape that load-imbalanced the old
/// uniform row split.
fn skewed_sparse(m: usize, k: usize) -> SparseTensor<f64> {
    let dense = DenseTensor::<f64>::from_fn([m, k], |idx| {
        let cutoff = k - (k * idx[0] * idx[0]) / (m * m).max(1);
        if idx[1] < cutoff {
            (idx[0] + idx[1]) as f64 / (m + k) as f64 - 0.5
        } else {
            0.0
        }
    });
    SparseTensor::from_dense(&dense, 0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--check needs a baseline path");
            std::process::exit(1);
        })
    });

    // full sizes are supersets of smoke sizes so a smoke --check always
    // finds its pairs in a committed full baseline
    let gemm_sizes: &[usize] = if smoke {
        &[64, 128]
    } else {
        &[64, 128, 256, 512]
    };
    let gemm_c64_sizes: &[usize] = if smoke { &[64, 128] } else { &[64, 128, 256] };
    let at_b_sizes: &[usize] = if smoke { &[128] } else { &[128, 512] };
    let gemv_sizes: &[(usize, usize)] = if smoke {
        &[(256, 256)]
    } else {
        &[(256, 256), (1024, 1024)]
    };
    // (m, k, n, reps): the small size sits below SPARSE_PAR_MIN_FLOPS
    // (threaded stays on one worker — sub-millisecond kernels are too
    // noisy for a 30% gate, so the smoke case is the ~3 ms 512×128×64),
    // the larger ones sit above it and engage the pool
    // rep counts are sized for the parity assertion, not just the 30%
    // rate gate: best-of needs enough swapped-order pairs to ride out the
    // multi-second frequency-drift waves VMs show even when idle
    let sd_sizes: &[(usize, usize, usize, usize)] = if smoke {
        &[(512, 128, 64, 10)]
    } else {
        &[(512, 128, 64, 10), (2048, 512, 256, 6)]
    };
    // the above-threshold 2048×512×256 rides in the smoke set too: it is
    // the size the merge-join rework is gated on, and with that kernel it
    // is CI-cheap
    let ss_sizes: &[(usize, usize, usize, usize)] = if smoke {
        &[(512, 128, 64, 10), (2048, 512, 256, 6)]
    } else {
        &[(512, 128, 64, 10), (1024, 256, 128, 6), (2048, 512, 256, 6)]
    };
    let reps = 8;
    // every (kernel, size) is measured in PASSES round-robin sweeps and
    // min-merged, so its best-of samples several machine states instead
    // of one — see `record`
    const PASSES: usize = 3;
    let mut entries: Vec<Entry> = Vec::new();
    let mut parity_acc: Vec<ParityAcc> = Vec::new();

    println!("simd dispatch: {}", tt_tensor::simd_level().name());

    for _pass in 0..PASSES {
        // identical seed every pass: passes sample machine states, not data
        let mut rng = StdRng::seed_from_u64(7);

        // --- dense GEMM: packed register-tiled vs seed scalar loop -----------
        for &s in gemm_sizes {
            let a = DenseTensor::<f64>::random([s, s], &mut rng);
            let b = DenseTensor::<f64>::random([s, s], &mut rng);
            let flops = 2.0 * (s as f64).powi(3);
            let mut c = vec![0.0f64; s * s];

            let secs = best_of(reps, || {
                c.iter_mut().for_each(|x| *x = 0.0);
                tt_tensor::gemm::gemm_acc_slices(s, s, s, a.data(), b.data(), &mut c);
            });
            record(
                &mut entries,
                "gemm_packed",
                format!("{s}x{s}x{s}"),
                flops,
                secs,
            );

            let secs = best_of(reps, || {
                c.iter_mut().for_each(|x| *x = 0.0);
                seed_gemm_acc(s, s, s, a.data(), b.data(), &mut c);
            });
            record(
                &mut entries,
                "gemm_seed_scalar",
                format!("{s}x{s}x{s}"),
                flops,
                secs,
            );
        }

        // --- Complex64 GEMM: plane-split packed microkernel vs seed scalar ---
        // one complex MAC is 4 real multiplies + 4 real adds → 8·m·n·k flops
        for &s in gemm_c64_sizes {
            let a = DenseTensor::<Complex64>::random([s, s], &mut rng);
            let b = DenseTensor::<Complex64>::random([s, s], &mut rng);
            let flops = 8.0 * (s as f64).powi(3);
            let mut c = vec![Complex64::new(0.0, 0.0); s * s];

            let secs = best_of(reps, || {
                c.iter_mut().for_each(|x| *x = Complex64::new(0.0, 0.0));
                tt_tensor::gemm::gemm_acc_slices(s, s, s, a.data(), b.data(), &mut c);
            });
            record(
                &mut entries,
                "gemm_packed_c64",
                format!("{s}x{s}x{s}"),
                flops,
                secs,
            );

            let secs = best_of(reps, || {
                c.iter_mut().for_each(|x| *x = Complex64::new(0.0, 0.0));
                seed_gemm_acc(s, s, s, a.data(), b.data(), &mut c);
            });
            record(
                &mut entries,
                "gemm_seed_scalar_c64",
                format!("{s}x{s}x{s}"),
                flops,
                secs,
            );
        }

        // --- transposed-layout GEMM (packing absorbs the transpose) ----------
        for &s in at_b_sizes {
            let a = DenseTensor::<f64>::random([s, s], &mut rng);
            let b = DenseTensor::<f64>::random([s, s], &mut rng);
            let flops = 2.0 * (s as f64).powi(3);
            let secs = best_of(reps, || {
                tt_tensor::gemm(
                    &a,
                    tt_tensor::Layout::Transposed,
                    &b,
                    tt_tensor::Layout::Normal,
                )
                .unwrap();
            });
            record(
                &mut entries,
                "gemm_at_b",
                format!("{s}x{s}x{s}"),
                flops,
                secs,
            );
        }

        // --- GEMV fast path (Davidson matvec shape) --------------------------
        for &(m, k) in gemv_sizes {
            let a = DenseTensor::<f64>::random([m, k], &mut rng);
            let x = DenseTensor::<f64>::random([k, 1], &mut rng);
            let flops = 2.0 * m as f64 * k as f64;
            let secs = best_of(reps * 4, || {
                tt_tensor::gemm_f64(&a, &x).unwrap();
            });
            record(
                &mut entries,
                "gemv_fused_n1",
                format!("{m}x{k}x1"),
                flops,
                secs,
            );
        }

        // --- sparse kernels through the executor -----------------------------
        // sequential vs threaded at each size: below the work-volume threshold
        // both run the same single-worker path; above it the threaded executor
        // fans volume-balanced buckets over the pool (the crossover). The two
        // modes alternate within one rep loop, swapping which goes first each
        // rep, and parity is judged on paired ratios (see module docs).
        for &(m, k, n, reps) in sd_sizes {
            let sp = skewed_sparse(m, k);
            let b = DenseTensor::<f64>::random([k, n], &mut rng);
            let sd_flops = 2.0 * sp.nnz() as f64 * n as f64;
            let seq = Executor::with_machine(Machine::local(), 1, ExecMode::Sequential);
            let thr = Executor::with_machine(Machine::local(), 1, ExecMode::Threaded);
            let (seq_times, thr_times) = time_mode_pairs(
                reps,
                || {
                    seq.contract_sd("ik,kj->ij", &sp, &b).unwrap();
                },
                || {
                    thr.contract_sd("ik,kj->ij", &sp, &b).unwrap();
                },
            );
            record_parity(
                &mut parity_acc,
                "sd_contract_threaded",
                format!("{m}x{k}x{n}"),
                pair_ratios(&seq_times, &thr_times),
            );
            for (label, secs) in [
                ("sd_contract_seq", best_time(&seq_times)),
                ("sd_contract_threaded", best_time(&thr_times)),
            ] {
                record(&mut entries, label, format!("{m}x{k}x{n}"), sd_flops, secs);
            }
        }
        for &(m, k, n, reps) in ss_sizes {
            let sp = skewed_sparse(m, k);
            let sb = SparseTensor::from_dense(&DenseTensor::<f64>::random([k, n], &mut rng), 0.5);
            let sd_flops = 2.0 * sp.nnz() as f64 * n as f64;
            let seq = Executor::with_machine(Machine::local(), 1, ExecMode::Sequential);
            let thr = Executor::with_machine(Machine::local(), 1, ExecMode::Threaded);
            let (seq_times, thr_times) = time_mode_pairs(
                reps,
                || {
                    seq.contract_ss("ik,kj->ij", &sp, &sb, None).unwrap();
                },
                || {
                    thr.contract_ss("ik,kj->ij", &sp, &sb, None).unwrap();
                },
            );
            record_parity(
                &mut parity_acc,
                "ss_contract_threaded",
                format!("{m}x{k}x{n}"),
                pair_ratios(&seq_times, &thr_times),
            );
            for (label, secs) in [
                ("ss_contract_seq", best_time(&seq_times)),
                ("ss_contract_threaded", best_time(&thr_times)),
            ] {
                // flops nominal: actual ss work depends on key overlap
                record(
                    &mut entries,
                    label,
                    format!("{m}x{k}x{n}"),
                    sd_flops * 0.5,
                    secs,
                );
            }
        }
    } // pass loop

    let parity: Vec<ParitySample> = parity_acc
        .iter()
        .map(|p| ParitySample {
            kernel: p.kernel,
            size: p.size.clone(),
            ratio: median(&p.ratios),
        })
        .collect();

    // --- report -----------------------------------------------------------
    for e in &entries {
        println!(
            "{:<24} {:>14}  {:>8.2} GFlop/s  ({:.3e} s)",
            e.kernel,
            e.size,
            e.gflops(),
            e.secs
        );
    }

    if let Some(path) = check_path {
        // regression-gate mode: compare, do not overwrite the baseline
        let baseline = load_baseline(&path);
        let baseline_ok = check_against_baseline(&entries, &baseline);
        println!();
        let parity_ok = check_threaded_parity(&parity);
        if !baseline_ok || !parity_ok {
            std::process::exit(1);
        }
        return;
    }
    println!();
    check_threaded_parity(&parity); // informational outside --check

    let mut json = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"size\": \"{}\", \"gflops\": {:.4}, \"seconds\": {:.6e}}}{}\n",
            e.kernel,
            e.size,
            e.gflops(),
            e.secs,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    // a smoke run must never clobber the committed full baseline — its
    // entries are a strict subset, and a subset baseline would silently
    // shrink what the CI gate covers
    let out = if smoke {
        "BENCH_kernels.smoke.json"
    } else {
        "BENCH_kernels.json"
    };
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwrote {out} ({} entries)", entries.len());

    // the acceptance gate PR 2 shipped under (informational at runtime)
    if !smoke {
        let g = |k: &str| {
            entries
                .iter()
                .find(|e| e.kernel == k && e.size == "512x512x512")
                .map(Entry::gflops)
                .unwrap_or(0.0)
        };
        let (packed, seed) = (g("gemm_packed"), g("gemm_seed_scalar"));
        println!(
            "packed/seed speedup at 512^3: {:.2}x",
            packed / seed.max(1e-12)
        );
    }
}

//! Table II: complexity of the three algorithms, evaluated from the
//! empirical block model and cross-checked against live flop counts.

use tt_bench::{grow_state, measure_middle_step, System, Table};
use tt_blocks::Algorithm;
use tt_dist::Executor;

fn main() {
    println!("=== Table II: algorithm complexity (block model) ===\n");
    let algos = [
        Algorithm::List,
        Algorithm::SparseSparse,
        Algorithm::SparseDense,
    ];
    for system in [System::Spins, System::Electrons] {
        let model = system.block_model();
        let k = system.paper_k();
        println!(
            "--- {system:?}: q = {}, r = {}, d = {}, k = {k} ---",
            model.q, model.r, model.d
        );
        let mut t = Table::new(&[
            "algorithm",
            "m",
            "blocks",
            "Davidson flops",
            "Davidson mem (words)",
            "BSP supersteps",
            "BSP words (p=64)",
        ]);
        for &m in &[2048usize, 8192, 32768] {
            for algo in algos {
                t.row(vec![
                    algo.to_string(),
                    m.to_string(),
                    model.n_blocks(m).to_string(),
                    format!("{:.3e}", model.davidson_flops(algo, m, k)),
                    format!("{:.3e}", model.davidson_memory(algo, m, k)),
                    format!("{:.0}", model.bsp_supersteps(algo, m)),
                    format!("{:.3e}", model.bsp_comm(algo, m, k, 64)),
                ]);
            }
        }
        t.print();
        let _ = t.write_csv(&format!("table2_{system:?}"));
        println!();
    }

    println!("=== live cross-check: counted flops scale like the model ===\n");
    // two live middle-step measurements at m and 2m: the flop ratio should
    // approach the model's (the model scales with the cube of the block
    // size plus subleading environment terms)
    let mut t = Table::new(&["system", "m", "counted flops", "ratio", "model ratio"]);
    for system in [System::Spins] {
        let lat = system.default_lattice();
        let exec = Executor::local();
        let mut prev: Option<u64> = None;
        for m in [16usize, 32, 64] {
            let warm = grow_state(system, &lat, m);
            let step = measure_middle_step(&warm, &exec, Algorithm::List);
            let ratio = prev
                .map(|p| format!("{:.2}", step.flops as f64 / p as f64))
                .unwrap_or_else(|| "-".into());
            let model = system.block_model();
            let k = warm.mpo.max_bond_dim();
            let mr = if prev.is_some() {
                format!(
                    "{:.2}",
                    model.davidson_flops(Algorithm::List, m, k)
                        / model.davidson_flops(Algorithm::List, m / 2, k)
                )
            } else {
                "-".into()
            };
            t.row(vec![
                format!("{system:?}"),
                m.to_string(),
                step.flops.to_string(),
                ratio,
                mr,
            ]);
            prev = Some(step.flops);
        }
    }
    t.print();
    let _ = t.write_csv("table2_live");
}

//! Figure 12: electrons strong scaling of the sparse-sparse algorithm at
//! m = 8192 on Blue Waters and Stampede2. The paper sees nearly ideal (or
//! better) speedup at this size, with the sparse format requiring ≥4 nodes
//! on Stampede2 (vs 2 on Blue Waters) for memory.

use tt_bench::{model_step, System, Table};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    let m = 8192;
    println!("=== Fig. 12: electrons strong scaling, sparse-sparse, m={m} ===\n");
    let mut t = Table::new(&[
        "machine",
        "nodes",
        "time (s)",
        "speedup",
        "efficiency",
        "mem/node GB",
    ]);
    for (machine, nodes0, node_list) in [
        (Machine::blue_waters(16), 2usize, vec![2usize, 4, 8]),
        (Machine::stampede2(64), 4usize, vec![4usize, 8, 16]),
    ] {
        let t0 = model_step(
            System::Electrons,
            Algorithm::SparseSparse,
            &machine,
            nodes0,
            m,
        )
        .total();
        for nodes in node_list {
            let p = model_step(
                System::Electrons,
                Algorithm::SparseSparse,
                &machine,
                nodes,
                m,
            );
            let speedup = t0 / p.total();
            let eff = speedup / (nodes as f64 / nodes0 as f64);
            t.row(vec![
                machine.name.clone(),
                nodes.to_string(),
                format!("{:.4}", p.total()),
                format!("{speedup:.2}"),
                format!("{eff:.3}"),
                format!("{:.1}", p.mem_per_node / 1e9),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig12");
    println!(
        "\npaper shape checks: near-ideal strong-scaling speedup at m = 8192\n\
         for the sparse-sparse algorithm on both machines."
    );
}

//! Figure 12: electrons strong scaling of the sparse-sparse algorithm at
//! m = 8192 on Blue Waters and Stampede2. The paper sees nearly ideal (or
//! better) speedup at this size, with the sparse format requiring ≥4 nodes
//! on Stampede2 (vs 2 on Blue Waters) for memory.

use tt_bench::{model_step, System, Table};
use tt_blocks::Algorithm;
use tt_dist::Machine;

fn main() {
    // when re-executed as a transport worker for the live section below,
    // serve tasks and exit instead of printing the tables
    tt_dist::maybe_serve();
    let m = 8192;
    println!("=== Fig. 12: electrons strong scaling, sparse-sparse, m={m} ===\n");
    let mut t = Table::new(&[
        "machine",
        "nodes",
        "time (s)",
        "speedup",
        "efficiency",
        "mem/node GB",
    ]);
    for (machine, nodes0, node_list) in [
        (Machine::blue_waters(16), 2usize, vec![2usize, 4, 8]),
        (Machine::stampede2(64), 4usize, vec![4usize, 8, 16]),
    ] {
        let t0 = model_step(
            System::Electrons,
            Algorithm::SparseSparse,
            &machine,
            nodes0,
            m,
        )
        .total();
        for nodes in node_list {
            let p = model_step(
                System::Electrons,
                Algorithm::SparseSparse,
                &machine,
                nodes,
                m,
            );
            let speedup = t0 / p.total();
            let eff = speedup / (nodes as f64 / nodes0 as f64);
            t.row(vec![
                machine.name.clone(),
                nodes.to_string(),
                format!("{:.4}", p.total()),
                format!("{speedup:.2}"),
                format!("{eff:.3}"),
                format!("{:.1}", p.mem_per_node / 1e9),
            ]);
        }
    }
    t.print();
    let _ = t.write_csv("fig12");
    println!(
        "\npaper shape checks: near-ideal strong-scaling speedup at m = 8192\n\
         for the sparse-sparse algorithm on both machines."
    );
    live_driver_bytes();
}

/// Live section: a small electron-chain DMRG over the real multi-process
/// backend, printing the driver's per-sweep data-plane traffic. The sweep
/// driver keeps each eigensolve's environment/MPO operands resident, so
/// these operand-byte figures are the regression surface for the caching
/// win (compare the value-vs-resident Davidson line at the end).
#[cfg(unix)]
fn live_driver_bytes() {
    use dmrg::{davidson, DavidsonOptions, Dmrg, EffectiveHam, Environments};
    use tt_dist::{Executor, SpawnSpec};
    use tt_mps::{electron_filling, hubbard, Electron, Lattice, Mps};

    println!("\n== live driver bytes per sweep (multi-process backend, resident operands) ==\n");
    let n = 8;
    let lat = Lattice::chain(n);
    let mpo = hubbard(&lat, 1.0, 4.0).build().expect("mpo");
    let mut psi = Mps::product_state(&Electron, &electron_filling(n, n / 2, n / 2)).expect("state");
    let exec =
        match Executor::multi_process(Machine::blue_waters(2), 1, 3, SpawnSpec::SelfExec(vec![])) {
            Ok(e) => e,
            Err(e) => {
                println!("(skipped: could not spawn workers: {e})");
                return;
            }
        };
    let driver = Dmrg::new(&exec, Algorithm::List, &mpo);
    println!(
        "{:<8} {:>6} {:>16} {:>16}",
        "sweep", "m", "operand bytes", "result bytes"
    );
    let mut last = (0u64, 0u64);
    // cutoff-free noisy sweeps keep the bond dimension at the cap, so the
    // per-sweep traffic reflects real operand volumes, not a collapsed
    // converged state
    for (i, &m) in [16usize, 32, 48].iter().enumerate() {
        let schedule = dmrg::Schedule {
            sweeps: vec![dmrg::SweepParams {
                max_m: m,
                cutoff: 0.0,
                davidson: DavidsonOptions::default(),
                noise: 1e-3,
            }],
        };
        driver.run(&mut psi, &schedule).expect("sweep");
        let now = (exec.operand_bytes(), exec.result_bytes());
        println!(
            "{:<8} {:>6} {:>16} {:>16}",
            i,
            psi.max_bond_dim(),
            now.0 - last.0,
            now.1 - last.1
        );
        last = now;
    }

    // per-rank worker cache residency after the sweeps
    if let Ok(stats) = exec.cache_stats() {
        println!(
            "\n{:<6} {:>12} {:>8} {:>8} {:>10} {:>10} {:>10}",
            "rank", "bytes", "entries", "pinned", "hits", "misses", "evictions"
        );
        for (r, s) in stats.iter().enumerate() {
            println!(
                "{:<6} {:>12} {:>8} {:>8} {:>10} {:>10} {:>10}",
                r, s.bytes, s.entries, s.pinned, s.hits, s.misses, s.evictions
            );
        }
    }

    // one local eigensolve at a middle bond, value-passing vs resident
    let envs = Environments::initialize(&exec, Algorithm::List, &psi, &mpo).expect("envs");
    let j = n / 2 - 1;
    let mut lenv = envs.left[0].clone().expect("left edge");
    for site in 0..j {
        lenv = dmrg::extend_left(
            &exec,
            Algorithm::List,
            &lenv,
            psi.tensor(site),
            mpo.tensor(site),
        )
        .expect("left env");
    }
    let x0 = tt_blocks::contract::contract_list(
        &exec,
        "lsj,jtk->lstk",
        psi.tensor(j),
        psi.tensor(j + 1),
    )
    .expect("two-site tensor");
    let heff = EffectiveHam {
        exec: &exec,
        algo: Algorithm::List,
        left: &lenv,
        w1: mpo.tensor(j),
        w2: mpo.tensor(j + 1),
        right: envs.right[j + 1].as_ref().expect("right env"),
    };
    let before = (exec.operand_bytes(), exec.result_bytes());
    let (_, _) = davidson(|v| heff.apply(v), &x0, DavidsonOptions::default()).expect("value solve");
    let value = (
        exec.operand_bytes() - before.0,
        exec.result_bytes() - before.1,
    );
    let rham = heff.upload().expect("upload operands");
    let before = (exec.operand_bytes(), exec.result_bytes());
    let (_, _) = davidson(|v| rham.apply(v), &x0, DavidsonOptions::default()).expect("solve");
    let resident = (
        exec.operand_bytes() - before.0,
        exec.result_bytes() - before.1,
    );
    println!(
        "\none Davidson solve:\n  operand bytes: value-passing {}, resident {} ({:.1}x fewer)\n  \
         result bytes:  value-passing {}, chained  {} ({:.1}x fewer — intermediates stay \
         worker-side)",
        value.0,
        resident.0,
        value.0 as f64 / resident.0 as f64,
        value.1,
        resident.1,
        value.1 as f64 / resident.1 as f64
    );
}

#[cfg(not(unix))]
fn live_driver_bytes() {}

//! Matrix product states.
//!
//! Site tensors carry indices `(i_left In, σ In, i_right Out)` with flux 0;
//! the state's total quantum number rides on the rightmost boundary bond.
//! Canonical forms are maintained via block QR/SVD exactly as in
//! Section II-C of the paper.

use crate::mpo::Mpo;
use crate::sites::SiteType;
use crate::{Error, Result};
use tt_blocks::contract::contract_list;
use tt_blocks::{block_svd, scale_bond, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::Executor;
use tt_linalg::TruncSpec;
use tt_tensor::DenseTensor;

/// A matrix product state over block-sparse site tensors.
#[derive(Debug, Clone)]
pub struct Mps {
    tensors: Vec<BlockSparseTensor>,
}

impl Mps {
    /// Build from site tensors, validating bond compatibility.
    pub fn from_tensors(tensors: Vec<BlockSparseTensor>) -> Result<Self> {
        if tensors.is_empty() {
            return Err(Error::State("empty MPS".into()));
        }
        for t in &tensors {
            if t.order() != 3 {
                return Err(Error::State(format!(
                    "MPS site tensors must be order 3, got {}",
                    t.order()
                )));
            }
        }
        for w in tensors.windows(2) {
            if !w[0].indices()[2].contractable_with(&w[1].indices()[0]) {
                return Err(Error::State("MPS bond indices incompatible".into()));
            }
        }
        Ok(Self { tensors })
    }

    /// Product state `|s₀ s₁ …⟩`; the total charge accumulates on the
    /// right boundary bond.
    pub fn product_state<S: SiteType>(site: &S, states: &[usize]) -> Result<Self> {
        if states.is_empty() {
            return Err(Error::State("empty product state".into()));
        }
        let arity = site.arity();
        let mut tensors = Vec::with_capacity(states.len());
        let mut acc = QN::zero(arity);
        for (&s, _) in states.iter().zip(0..) {
            if s >= site.d() {
                return Err(Error::State(format!("state {s} ≥ d={}", site.d())));
            }
            let left = QnIndex::new(Arrow::In, vec![(acc, 1)]);
            acc = acc.add(site.state_qn(s));
            let right = QnIndex::new(Arrow::Out, vec![(acc, 1)]);
            let phys = site.physical_index(Arrow::In);
            let mut t = BlockSparseTensor::new(vec![left, phys.clone(), right], QN::zero(arity));
            // locate the sector of basis state s within the physical index
            let mut sector = 0usize;
            let mut within = s;
            for sec in 0..phys.n_sectors() {
                if within < phys.sector_dim(sec) {
                    sector = sec;
                    break;
                }
                within -= phys.sector_dim(sec);
            }
            let mut block = DenseTensor::zeros([1, phys.sector_dim(sector), 1]);
            block.set(&[0, within, 0], 1.0);
            t.insert_block(vec![0, sector as u16, 0], block)
                .map_err(|e| Error::State(e.to_string()))?;
            tensors.push(t);
        }
        Self::from_tensors(tensors)
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.tensors.len()
    }

    /// Site tensor `j`.
    pub fn tensor(&self, j: usize) -> &BlockSparseTensor {
        &self.tensors[j]
    }

    /// Replace site tensor `j`.
    pub fn set_tensor(&mut self, j: usize, t: BlockSparseTensor) {
        self.tensors[j] = t;
    }

    /// Bond dimensions including the unit boundaries (length `n+1`).
    pub fn bond_dims(&self) -> Vec<usize> {
        let mut out = vec![self.tensors[0].indices()[0].dim()];
        for t in &self.tensors {
            out.push(t.indices()[2].dim());
        }
        out
    }

    /// Maximum bond dimension `m`.
    pub fn max_bond_dim(&self) -> usize {
        self.bond_dims().into_iter().max().unwrap_or(0)
    }

    /// Total quantum number of the state (charge of the right boundary).
    pub fn total_qn(&self) -> QN {
        let last = self.tensors.last().expect("non-empty");
        last.indices()[2].qn(0)
    }

    /// `⟨self|other⟩`.
    pub fn overlap(&self, other: &Mps) -> Result<f64> {
        if self.n_sites() != other.n_sites() {
            return Err(Error::State("overlap between different sizes".into()));
        }
        let exec = Executor::local();
        let bra0 = self.tensors[0].conj();
        // E(b_bra, c_ket)
        let mut e = contract_list(&exec, "lsb,lsc->bc", &bra0, &other.tensors[0])
            .map_err(|e| Error::State(e.to_string()))?;
        for j in 1..self.n_sites() {
            let bra = self.tensors[j].conj();
            let t1 = contract_list(&exec, "bc,bse->cse", &e, &bra)
                .map_err(|e| Error::State(e.to_string()))?;
            e = contract_list(&exec, "cse,csf->ef", &t1, &other.tensors[j])
                .map_err(|e| Error::State(e.to_string()))?;
        }
        Ok(e.to_dense().at(&[0, 0]))
    }

    /// State norm `√⟨ψ|ψ⟩`.
    pub fn norm(&self) -> f64 {
        self.overlap(self).map(|x| x.max(0.0).sqrt()).unwrap_or(0.0)
    }

    /// Scale so the norm is 1.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            self.tensors[0].scale_mut(1.0 / n);
        }
    }

    /// `⟨ψ|H|ψ⟩ / ⟨ψ|ψ⟩`.
    pub fn expectation(&self, mpo: &Mpo) -> Result<f64> {
        if mpo.n_sites() != self.n_sites() {
            return Err(Error::State("MPO/MPS size mismatch".into()));
        }
        let exec = Executor::local();
        let bra0 = self.tensors[0].conj();
        // E(b_bra, k_mpo, c_ket): contract bra, W, ket at site 0
        // bra (l Out, p Out, b In); W (x In, p In, q Out, k Out);
        // ket (l In, q In, c Out); boundary l and x are unit dims —
        // contract p and q, fold the unit left bonds via explicit labels
        let mut e = {
            let bw = contract_list(&exec, "lpb,xpqk->lbxqk", &bra0, mpo.tensor(0)).map_err(wrap)?;
            contract_list(&exec, "lbxqk,lqc->bxkc", &bw, &self.tensors[0]).map_err(wrap)?
        };
        // e has indices (b_bra, x_unit, k_mpo, c_ket) — drop the unit x by
        // contracting later; simpler: reshape via permute keeping order —
        // x has dim 1; treat e as (b, x, k, c) and fold x into contraction
        for j in 1..self.n_sites() {
            let bra = self.tensors[j].conj();
            // t1(b,x,k,c) · bra(b,p,e) -> (x,k,c,p,e)
            let t1 = contract_list(&exec, "bxkc,bpe->xkcpe", &e, &bra).map_err(wrap)?;
            // · W(k,p,q,f) -> (x,c,e,q,f)
            let t2 = contract_list(&exec, "xkcpe,kpqf->xceqf", &t1, mpo.tensor(j)).map_err(wrap)?;
            // · ket(c,q,g) -> (x,e,f,g) == new (e? ...) keep order (e,x?,...)
            let t3 =
                contract_list(&exec, "xceqf,cqg->exfg", &t2, &self.tensors[j]).map_err(wrap)?;
            // rename to (b,x,k,c)
            e = t3;
        }
        // close: all remaining bonds are unit boundary bonds
        let val = e.to_dense().at(&[0, 0, 0, 0]);
        let n2 = self.overlap(self)?;
        Ok(val / n2)
    }

    /// Direct sum `|self⟩ + |other⟩` of two states with equal site count
    /// and total quantum number.
    ///
    /// Bond dimensions add (block-diagonal bulk tensors, row/column
    /// concatenation at the boundaries). The result is neither normalized
    /// nor canonical; DMRG initialization is its main use — starting from a
    /// superposition of product states widens the bond sector structure and
    /// avoids the local minima a single product state can get stuck in.
    pub fn sum(&self, other: &Mps) -> Result<Mps> {
        let n = self.n_sites();
        if other.n_sites() != n {
            return Err(Error::State("sum of different sizes".into()));
        }
        if n == 1 {
            let mut t = self.tensors[0].clone();
            t.axpy(1.0, &other.tensors[0])
                .map_err(|e| Error::State(e.to_string()))?;
            return Mps::from_tensors(vec![t]);
        }
        if self.total_qn() != other.total_qn() {
            return Err(Error::State(format!(
                "sum of different sectors {} and {}",
                self.total_qn(),
                other.total_qn()
            )));
        }
        let mut tensors = Vec::with_capacity(n);
        for j in 0..n {
            let a = &self.tensors[j];
            let b = &other.tensors[j];
            let share_left = j == 0;
            let share_right = j == n - 1;
            if share_left && a.indices()[0] != b.indices()[0] {
                return Err(Error::State("left boundary indices differ".into()));
            }
            if share_right && a.indices()[2] != b.indices()[2] {
                return Err(Error::State("right boundary indices differ".into()));
            }
            // concatenated graded indices (sector lists appended)
            let concat = |ia: &QnIndex, ib: &QnIndex| -> QnIndex {
                let mut sectors = ia.sectors().to_vec();
                sectors.extend_from_slice(ib.sectors());
                QnIndex::new(ia.arrow(), sectors)
            };
            let left = if share_left {
                a.indices()[0].clone()
            } else {
                concat(&a.indices()[0], &b.indices()[0])
            };
            let right = if share_right {
                a.indices()[2].clone()
            } else {
                concat(&a.indices()[2], &b.indices()[2])
            };
            let phys = a.indices()[1].clone();
            if phys != b.indices()[1] {
                return Err(Error::State("physical indices differ".into()));
            }
            let mut t =
                BlockSparseTensor::new(vec![left, phys, right], QN::zero(a.flux().n_charges()));
            let l_shift = if share_left {
                0
            } else {
                a.indices()[0].n_sectors() as u16
            };
            let r_shift = if share_right {
                0
            } else {
                a.indices()[2].n_sectors() as u16
            };
            for (key, block) in a.blocks() {
                t.insert_block(key.clone(), block.clone())
                    .map_err(|e| Error::State(e.to_string()))?;
            }
            for (key, block) in b.blocks() {
                let nk = vec![key[0] + l_shift, key[1], key[2] + r_shift];
                // boundary sharing can collide block keys; accumulate
                if let Some(existing) = t.block(&nk) {
                    let mut acc = existing.clone();
                    acc.axpy(1.0, block)
                        .map_err(|e| Error::State(e.to_string()))?;
                    t.insert_block(nk, acc)
                        .map_err(|e| Error::State(e.to_string()))?;
                } else {
                    t.insert_block(nk, block.clone())
                        .map_err(|e| Error::State(e.to_string()))?;
                }
            }
            tensors.push(t);
        }
        Mps::from_tensors(tensors)
    }

    /// Left-canonicalize sites `0..center` and right-canonicalize
    /// `center+1..n` (via block QR / SVD), making `center` the
    /// orthogonality center.
    pub fn canonicalize(&mut self, exec: &Executor, center: usize) -> Result<()> {
        let n = self.n_sites();
        if center >= n {
            return Err(Error::State(format!("center {center} ≥ n={n}")));
        }
        for j in 0..center {
            let (q, r) = tt_blocks::block_qr(exec, &self.tensors[j], &[0, 1], &[2])
                .map_err(|e| Error::State(e.to_string()))?;
            let merged =
                contract_list(exec, "bk,ksj->bsj", &r, &self.tensors[j + 1]).map_err(wrap)?;
            self.tensors[j] = q;
            self.tensors[j + 1] = merged;
        }
        for j in (center + 1..n).rev() {
            let svd = block_svd(
                exec,
                &self.tensors[j],
                &[0],
                &[1, 2],
                TruncSpec {
                    max_rank: usize::MAX,
                    cutoff: 0.0,
                    min_keep: 1,
                },
            )
            .map_err(|e| Error::State(e.to_string()))?;
            let mut us = svd.u;
            scale_bond(&mut us, 1, &svd.s, false).map_err(|e| Error::State(e.to_string()))?;
            let merged =
                contract_list(exec, "lsk,kx->lsx", &self.tensors[j - 1], &us).map_err(wrap)?;
            self.tensors[j] = svd.vt;
            self.tensors[j - 1] = merged;
        }
        Ok(())
    }

    /// Entanglement spectrum across the bond right of `site`
    /// (requires the state to be canonicalized with center at `site`).
    pub fn bond_spectrum(&self, exec: &Executor, site: usize) -> Result<tt_blocks::BlockDiag> {
        let svd = block_svd(
            exec,
            &self.tensors[site],
            &[0, 1],
            &[2],
            TruncSpec {
                max_rank: usize::MAX,
                cutoff: 0.0,
                min_keep: 1,
            },
        )
        .map_err(|e| Error::State(e.to_string()))?;
        Ok(svd.s)
    }

    /// Per-tensor block statistics for Fig. 2: `(n_blocks, largest block
    /// extent, fill fraction)` of site tensor `j`.
    pub fn block_stats(&self, j: usize) -> (usize, usize, f64) {
        let t = &self.tensors[j];
        (t.n_blocks(), t.largest_block_dim(), t.fill_fraction())
    }
}

fn wrap(e: tt_blocks::Error) -> Error {
    Error::State(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autompo::AutoMpo;
    use crate::sites::{Electron, SpinHalf};

    fn neel(n: usize) -> Mps {
        let states: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Mps::product_state(&SpinHalf, &states).unwrap()
    }

    #[test]
    fn product_state_norm_and_qn() {
        let psi = neel(6);
        assert_eq!(psi.n_sites(), 6);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        // Néel state has Sz_total = 0
        assert!(psi.total_qn().is_zero());
        assert_eq!(psi.max_bond_dim(), 1);
        // all-up state has 2Sz = n
        let up = Mps::product_state(&SpinHalf, &[0, 0, 0, 0]).unwrap();
        assert_eq!(up.total_qn(), QN::one(4));
    }

    #[test]
    fn orthogonal_product_states() {
        let a = Mps::product_state(&SpinHalf, &[0, 1, 0, 1]).unwrap();
        let b = Mps::product_state(&SpinHalf, &[1, 0, 0, 1]).unwrap();
        assert!((a.overlap(&a).unwrap() - 1.0).abs() < 1e-12);
        assert!(a.overlap(&b).unwrap().abs() < 1e-12);
    }

    #[test]
    fn electron_product_state() {
        // half filling, alternating ↑/↓: total (N↑,N↓) = (2,2)
        let psi = Mps::product_state(&Electron, &[1, 2, 1, 2]).unwrap();
        assert_eq!(psi.total_qn(), QN::two(2, 2));
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_on_product_state() {
        // Néel state: ⟨Sz_i Sz_{i+1}⟩ = -1/4 per bond, ⟨S+S- + h.c.⟩ = 0
        let n = 4;
        let mut b = AutoMpo::new(SpinHalf, n);
        for i in 0..n - 1 {
            b.add(1.0, &[(i, "Sz"), (i + 1, "Sz")]);
            b.add(0.5, &[(i, "S+"), (i + 1, "S-")]);
            b.add(0.5, &[(i, "S-"), (i + 1, "S+")]);
        }
        let mpo = b.build().unwrap();
        let psi = neel(n);
        let e = psi.expectation(&mpo).unwrap();
        assert!((e - (-(n as f64 - 1.0) * 0.25)).abs() < 1e-10, "e = {e}");
    }

    #[test]
    fn single_site_expectation() {
        let n = 3;
        let mut b = AutoMpo::new(SpinHalf, n);
        b.add(1.0, &[(1, "Sz")]);
        let mpo = b.build().unwrap();
        let psi = Mps::product_state(&SpinHalf, &[0, 1, 0]).unwrap();
        assert!((psi.expectation(&mpo).unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn canonicalize_preserves_state() {
        // build a small entangled state by summing two product states via
        // expectation checks: use canonicalization on a product state then
        // verify norm and overlap invariance
        let mut psi = neel(5);
        let exec = Executor::local();
        let reference = neel(5);
        psi.canonicalize(&exec, 2).unwrap();
        assert!((psi.norm() - 1.0).abs() < 1e-10);
        assert!((psi.overlap(&reference).unwrap() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn product_state_entropy_zero() {
        let mut psi = neel(4);
        let exec = Executor::local();
        psi.canonicalize(&exec, 1).unwrap();
        let spec = psi.bond_spectrum(&exec, 1).unwrap();
        assert!(spec.entanglement_entropy().abs() < 1e-10);
        assert_eq!(spec.bond_dim(), 1);
    }

    #[test]
    fn bad_states_rejected() {
        assert!(Mps::product_state(&SpinHalf, &[]).is_err());
        assert!(Mps::product_state(&SpinHalf, &[2]).is_err());
    }

    #[test]
    fn sum_of_orthogonal_states() {
        let a = Mps::product_state(&SpinHalf, &[0, 1, 0, 1]).unwrap();
        let b = Mps::product_state(&SpinHalf, &[1, 0, 1, 0]).unwrap();
        let s = a.sum(&b).unwrap();
        // ⟨a+b|a+b⟩ = 2 for orthonormal a, b
        assert!((s.norm() - 2.0f64.sqrt()).abs() < 1e-10);
        assert!((s.overlap(&a).unwrap() - 1.0).abs() < 1e-10);
        assert!((s.overlap(&b).unwrap() - 1.0).abs() < 1e-10);
        assert_eq!(s.max_bond_dim(), 2);
        assert!(s.total_qn().is_zero());
    }

    #[test]
    fn sum_same_state_doubles() {
        let a = Mps::product_state(&SpinHalf, &[0, 1, 0]).unwrap();
        let s = a.sum(&a).unwrap();
        assert!((s.overlap(&a).unwrap() - 2.0).abs() < 1e-10);
        assert!((s.norm() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn sum_expectation_is_mixture() {
        // (|ab⟩+|ba⟩)/√2 on 2 sites: ⟨SzSz⟩ = −1/4 still, but ⟨Sz_0⟩ = 0
        let a = Mps::product_state(&SpinHalf, &[0, 1]).unwrap();
        let b = Mps::product_state(&SpinHalf, &[1, 0]).unwrap();
        let mut s = a.sum(&b).unwrap();
        s.normalize();
        let mut bld = AutoMpo::new(SpinHalf, 2);
        bld.add(1.0, &[(0, "Sz")]);
        let mpo = bld.build().unwrap();
        assert!(s.expectation(&mpo).unwrap().abs() < 1e-10);
    }

    #[test]
    fn sum_sector_mismatch_rejected() {
        let a = Mps::product_state(&SpinHalf, &[0, 1]).unwrap();
        let b = Mps::product_state(&SpinHalf, &[0, 0]).unwrap();
        assert!(a.sum(&b).is_err());
        let c = Mps::product_state(&SpinHalf, &[0, 1, 0]).unwrap();
        assert!(a.sum(&c).is_err());
    }

    #[test]
    fn sum_canonicalizes_cleanly() {
        let a = Mps::product_state(&SpinHalf, &[0, 1, 0, 1]).unwrap();
        let b = Mps::product_state(&SpinHalf, &[0, 0, 1, 1]).unwrap();
        let mut s = a.sum(&b).unwrap();
        let exec = Executor::local();
        let before = s.norm();
        s.canonicalize(&exec, 0).unwrap();
        assert!((s.norm() - before).abs() < 1e-9);
    }
}

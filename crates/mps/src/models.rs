//! The paper's two benchmark Hamiltonians.
//!
//! * **spins** — the square-lattice `J1−J2` Heisenberg antiferromagnet at
//!   `J2/J1 = 0.5` on a cylinder (Section V):
//!   `H = J1 Σ_{⟨ij⟩} S_i·S_j + J2 Σ_{⟨⟨ij⟩⟩} S_i·S_j`.
//! * **electrons** — the triangular-lattice Hubbard model at `t = 1`,
//!   `U = 8.5`:
//!   `H = −t Σ_{⟨ij⟩σ} (c†_{iσ} c_{jσ} + h.c.) + U Σ_i n_{i↑} n_{i↓}`.

use crate::autompo::AutoMpo;
use crate::lattice::{BondKind, Lattice};
use crate::sites::{Electron, SpinHalf};

/// `J1−J2` Heisenberg model on a lattice: `S_i·S_j` on every bond with the
/// coupling chosen by bond kind.
pub fn heisenberg_j1j2(lat: &Lattice, j1: f64, j2: f64) -> AutoMpo<SpinHalf> {
    let mut b = AutoMpo::new(SpinHalf, lat.n_sites());
    let mut add_bond = |i: usize, j: usize, coupling: f64| {
        if coupling == 0.0 {
            return;
        }
        b.add(coupling, &[(i, "Sz"), (j, "Sz")]);
        b.add(0.5 * coupling, &[(i, "S+"), (j, "S-")]);
        b.add(0.5 * coupling, &[(i, "S-"), (j, "S+")]);
    };
    for (i, j) in lat.bonds_of(BondKind::Nearest) {
        add_bond(i, j, j1);
    }
    for (i, j) in lat.bonds_of(BondKind::NextNearest) {
        add_bond(i, j, j2);
    }
    b
}

/// Hubbard model on a lattice: hopping `−t` on nearest-neighbour bonds plus
/// on-site repulsion `U`.
pub fn hubbard(lat: &Lattice, t: f64, u: f64) -> AutoMpo<Electron> {
    let mut b = AutoMpo::new(Electron, lat.n_sites());
    for (i, j) in lat.bonds_of(BondKind::Nearest) {
        for (cd, c) in [("Cdagup", "Cup"), ("Cdagdn", "Cdn")] {
            b.add(-t, &[(i, cd), (j, c)]);
            b.add(-t, &[(j, cd), (i, c)]);
        }
    }
    if u != 0.0 {
        for i in 0..lat.n_sites() {
            b.add(u, &[(i, "Nupdn")]);
        }
    }
    b
}

/// Néel-pattern initial product state for a spin lattice (`Sz_total = 0`
/// for even site counts).
pub fn neel_state(n: usize) -> Vec<usize> {
    (0..n).map(|i| i % 2).collect()
}

/// Alternating ↑/↓ filling with `n_up + n_dn` electrons on `n` sites
/// (`|↑⟩`=1, `|↓⟩`=2, `|0⟩`=0), spread as evenly as possible.
pub fn electron_filling(n: usize, n_up: usize, n_dn: usize) -> Vec<usize> {
    assert!(n_up + n_dn <= n, "more electrons than sites (no doublons)");
    let mut states = vec![0usize; n];
    let total = n_up + n_dn;
    let mut placed_up = 0;
    let mut placed_dn = 0;
    for k in 0..total {
        // spread electron k across the chain
        let pos = k * n / total;
        // find the next free site from pos
        let mut p = pos;
        while states[p] != 0 {
            p = (p + 1) % n;
        }
        if (k % 2 == 0 && placed_up < n_up) || placed_dn >= n_dn {
            states[p] = 1;
            placed_up += 1;
        } else {
            states[p] = 2;
            placed_dn += 1;
        }
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mps::Mps;
    use tt_blocks::QN;

    #[test]
    fn heisenberg_chain_term_count() {
        let lat = Lattice::chain(6);
        let b = heisenberg_j1j2(&lat, 1.0, 0.0);
        // 3 terms per bond, 5 bonds
        assert_eq!(b.terms().len(), 15);
    }

    #[test]
    fn j2_terms_included() {
        let lat = Lattice::square_cylinder(3, 4);
        let b = heisenberg_j1j2(&lat, 1.0, 0.5);
        let nn = lat.bonds_of(BondKind::Nearest).count();
        let nnn = lat.bonds_of(BondKind::NextNearest).count();
        assert_eq!(b.terms().len(), 3 * (nn + nnn));
        // j2 = 0 drops the NNN terms
        let b0 = heisenberg_j1j2(&lat, 1.0, 0.0);
        assert_eq!(b0.terms().len(), 3 * nn);
    }

    #[test]
    fn hubbard_term_count() {
        let lat = Lattice::chain(4);
        let b = hubbard(&lat, 1.0, 8.5);
        // 4 hopping terms per bond (2 spins × h.c.) + U per site
        assert_eq!(b.terms().len(), 4 * 3 + 4);
    }

    #[test]
    fn mpo_builds_for_small_cylinders() {
        let lat = Lattice::square_cylinder(3, 2);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.5).build().unwrap();
        assert_eq!(mpo.n_sites(), 6);
        assert!(mpo.max_bond_dim() >= 5);
        let lat_t = Lattice::triangular_cylinder_xc(2, 2);
        let mpo_h = hubbard(&lat_t, 1.0, 8.5).build().unwrap();
        assert_eq!(mpo_h.n_sites(), 4);
    }

    #[test]
    fn neel_and_filling_states() {
        assert_eq!(neel_state(4), vec![0, 1, 0, 1]);
        let f = electron_filling(4, 2, 2);
        assert_eq!(f.iter().filter(|&&s| s == 1).count(), 2);
        assert_eq!(f.iter().filter(|&&s| s == 2).count(), 2);
        let psi = Mps::product_state(&Electron, &f).unwrap();
        assert_eq!(psi.total_qn(), QN::two(2, 2));
        let _ = SpinHalf;
    }

    #[test]
    fn hubbard_mpo_energy_of_filled_state() {
        // doubly-occupied site pays U; hopping has zero expectation on a
        // product state
        let lat = Lattice::chain(2);
        let mpo = hubbard(&lat, 1.0, 8.5).build().unwrap();
        let psi = Mps::product_state(&Electron, &[3, 0]).unwrap();
        let e = psi.expectation(&mpo).unwrap();
        assert!((e - 8.5).abs() < 1e-10, "e = {e}");
    }
}

//! Lattice geometries: the paper's 2-D cylinders mapped to a 1-D chain.
//!
//! The spin benchmark runs on a 20×10 square-lattice cylinder with J1
//! (nearest-neighbour) and J2 (diagonal next-nearest-neighbour) couplings
//! (Fig. 4a); the electron benchmark runs on a 6×6 triangular cylinder in
//! the XC orientation (Fig. 4b). Sites are ordered column-major
//! (`index = x·W + y`), periodic around the cylinder (y) and open along it
//! (x) — the ordering that makes a DMRG "column" the 10-site unit timed in
//! Fig. 6.

/// Classification of a two-site coupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BondKind {
    /// Nearest neighbour (J1 / hopping t).
    Nearest,
    /// Next-nearest (diagonal) neighbour (J2).
    NextNearest,
}

/// A finite cylinder lattice with its 1-D site ordering and bond list.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Length along the open direction (number of columns).
    pub lx: usize,
    /// Circumference (column height, periodic).
    pub ly: usize,
    /// Bonds as `(site_a, site_b, kind)` with `site_a < site_b`.
    pub bonds: Vec<(usize, usize, BondKind)>,
    /// Human-readable name.
    pub name: String,
}

impl Lattice {
    /// Total number of sites.
    pub fn n_sites(&self) -> usize {
        self.lx * self.ly
    }

    /// Column-major site index of `(x, y)`.
    pub fn site(&self, x: usize, y: usize) -> usize {
        x * self.ly + y
    }

    /// Inverse of [`Lattice::site`].
    pub fn coords(&self, s: usize) -> (usize, usize) {
        (s / self.ly, s % self.ly)
    }

    /// Column index of a site (the 10-site groups of Fig. 6).
    pub fn column(&self, s: usize) -> usize {
        s / self.ly
    }

    /// Bonds of a given kind.
    pub fn bonds_of(&self, kind: BondKind) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bonds
            .iter()
            .filter(move |&&(_, _, k)| k == kind)
            .map(|&(a, b, _)| (a, b))
    }

    /// Largest 1-D distance any bond spans (bounds the MPO's interaction
    /// range; grows with the cylinder width).
    pub fn max_bond_range(&self) -> usize {
        self.bonds.iter().map(|&(a, b, _)| b - a).max().unwrap_or(0)
    }

    fn push_bond(bonds: &mut Vec<(usize, usize, BondKind)>, a: usize, b: usize, k: BondKind) {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if a != b && !bonds.contains(&(a, b, k)) {
            bonds.push((a, b, k));
        }
    }

    /// Square-lattice cylinder (`lx × ly`, periodic in y) with J1 bonds to
    /// horizontal/vertical neighbours and J2 bonds to the diagonals —
    /// the paper's `J1−J2` geometry (Fig. 4a).
    pub fn square_cylinder(lx: usize, ly: usize) -> Lattice {
        assert!(lx >= 1 && ly >= 2);
        let mut bonds = Vec::new();
        let site = |x: usize, y: usize| x * ly + y;
        for x in 0..lx {
            for y in 0..ly {
                let s = site(x, y);
                // vertical (periodic), skip double-count for ly == 2
                let yn = (y + 1) % ly;
                if yn != y && !(ly == 2 && y == 1) {
                    Self::push_bond(&mut bonds, s, site(x, yn), BondKind::Nearest);
                }
                if x + 1 < lx {
                    // horizontal
                    Self::push_bond(&mut bonds, s, site(x + 1, y), BondKind::Nearest);
                    // diagonals (next-nearest)
                    let yu = (y + 1) % ly;
                    let yd = (y + ly - 1) % ly;
                    if yu != y {
                        Self::push_bond(&mut bonds, s, site(x + 1, yu), BondKind::NextNearest);
                    }
                    if yd != y && yd != yu {
                        Self::push_bond(&mut bonds, s, site(x + 1, yd), BondKind::NextNearest);
                    }
                }
            }
        }
        Lattice {
            lx,
            ly,
            bonds,
            name: format!("square-cylinder {lx}x{ly}"),
        }
    }

    /// Triangular-lattice cylinder in the XC orientation (`lx × ly`,
    /// periodic in y): square-lattice bonds plus one set of diagonals, all
    /// nearest-neighbour — the paper's triangular Hubbard geometry
    /// (Fig. 4b).
    pub fn triangular_cylinder_xc(lx: usize, ly: usize) -> Lattice {
        assert!(lx >= 1 && ly >= 2);
        let mut bonds = Vec::new();
        let site = |x: usize, y: usize| x * ly + y;
        for x in 0..lx {
            for y in 0..ly {
                let s = site(x, y);
                let yn = (y + 1) % ly;
                if yn != y && !(ly == 2 && y == 1) {
                    Self::push_bond(&mut bonds, s, site(x, yn), BondKind::Nearest);
                }
                if x + 1 < lx {
                    Self::push_bond(&mut bonds, s, site(x + 1, y), BondKind::Nearest);
                    // one diagonal family makes the lattice triangular
                    if yn != y {
                        Self::push_bond(&mut bonds, s, site(x + 1, yn), BondKind::Nearest);
                    }
                }
            }
        }
        Lattice {
            lx,
            ly,
            bonds,
            name: format!("triangular-cylinder-XC {lx}x{ly}"),
        }
    }

    /// Open 1-D chain (the quickstart geometry).
    pub fn chain(n: usize) -> Lattice {
        assert!(n >= 2);
        let bonds = (0..n - 1).map(|i| (i, i + 1, BondKind::Nearest)).collect();
        Lattice {
            lx: n,
            ly: 1,
            bonds,
            name: format!("chain {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_bonds() {
        let c = Lattice::chain(5);
        assert_eq!(c.n_sites(), 5);
        assert_eq!(c.bonds.len(), 4);
        assert_eq!(c.max_bond_range(), 1);
    }

    #[test]
    fn square_cylinder_coordination() {
        // 4x4 cylinder: each site has 4 NN bonds (periodic y, open x edges
        // have 3); total NN bonds = lx*ly (vertical) + (lx-1)*ly (horizontal)
        let l = Lattice::square_cylinder(4, 4);
        let nn = l.bonds_of(BondKind::Nearest).count();
        assert_eq!(nn, 4 * 4 + 3 * 4);
        // NNN: 2 diagonals per horizontal plaquette column
        let nnn = l.bonds_of(BondKind::NextNearest).count();
        assert_eq!(nnn, 3 * 4 * 2);
        // no duplicate bonds
        let mut sorted = l.bonds.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), l.bonds.len());
    }

    #[test]
    fn width2_no_double_bonds() {
        let l = Lattice::square_cylinder(3, 2);
        // vertical bonds: one per column (not two)
        let vertical: Vec<_> = l
            .bonds_of(BondKind::Nearest)
            .filter(|&(a, b)| b == a + 1 && a % 2 == 0)
            .collect();
        assert_eq!(vertical.len(), 3);
    }

    #[test]
    fn site_ordering_column_major() {
        let l = Lattice::square_cylinder(3, 4);
        assert_eq!(l.site(0, 0), 0);
        assert_eq!(l.site(0, 3), 3);
        assert_eq!(l.site(1, 0), 4);
        assert_eq!(l.coords(7), (1, 3));
        assert_eq!(l.column(7), 1);
        // NN bond range bounded by width+... (cyclic wrap gives ly-1; the
        // horizontal bond spans exactly ly)
        assert_eq!(l.max_bond_range(), 4 + 3); // diagonal (x,y)->(x+1,y-1) furthest
    }

    #[test]
    fn triangular_has_extra_diagonals() {
        let sq = Lattice::square_cylinder(4, 4);
        let tr = Lattice::triangular_cylinder_xc(4, 4);
        let sq_nn = sq.bonds_of(BondKind::Nearest).count();
        let tr_nn = tr.bonds_of(BondKind::Nearest).count();
        assert_eq!(tr_nn, sq_nn + 3 * 4); // one diagonal per horizontal pair
        assert_eq!(tr.bonds_of(BondKind::NextNearest).count(), 0);
    }

    #[test]
    fn paper_geometries_instantiable() {
        let spins = Lattice::square_cylinder(20, 10);
        assert_eq!(spins.n_sites(), 200);
        let electrons = Lattice::triangular_cylinder_xc(6, 6);
        assert_eq!(electrons.n_sites(), 36);
    }
}

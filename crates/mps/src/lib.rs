//! `tt-mps` — matrix product states and operators for the paper's physical
//! systems.
//!
//! * [`sites`] — spin-1/2 (`d=2`, U(1) `Sz`) and electron (`d=4`,
//!   U(1)×U(1) `(N↑,N↓)`) local Hilbert spaces,
//! * [`lattice`] — the 2-D cylinders of Fig. 4 mapped to 1-D site
//!   orderings,
//! * [`autompo`] — AutoMPO: operator-string sums → MPO via a finite-state
//!   machine, with Jordan-Wigner fermion strings and deparallelization
//!   (the ITensor-equivalent construction the paper uses for parity),
//! * [`mpo`] / [`mps`] — block-sparse MPO/MPS with canonical forms,
//!   overlaps, expectation values and SVD compression,
//! * [`models`] — the `J1−J2` Heisenberg and triangular Hubbard
//!   Hamiltonians of Section V.

pub mod autompo;
pub mod lattice;
pub mod models;
pub mod mpo;
pub mod mps;
pub mod sites;

pub use autompo::{expand_term, AutoMpo, ExpandedTerm, OpTerm};
pub use lattice::{BondKind, Lattice};
pub use models::{electron_filling, heisenberg_j1j2, hubbard, neel_state};
pub use mpo::{dense_from_terms, kron, Mpo};
pub use mps::Mps;
pub use sites::{Electron, SiteType, SpinHalf};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from MPS/MPO construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Unknown operator or malformed operator string.
    Op(String),
    /// Malformed Hamiltonian term.
    Term(String),
    /// Malformed state.
    State(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Op(s) => write!(f, "operator error: {s}"),
            Error::Term(s) => write!(f, "term error: {s}"),
            Error::State(s) => write!(f, "state error: {s}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<tt_tensor::Error> for Error {
    fn from(e: tt_tensor::Error) -> Self {
        Error::Term(e.to_string())
    }
}

impl From<tt_blocks::Error> for Error {
    fn from(e: tt_blocks::Error) -> Self {
        Error::Term(e.to_string())
    }
}

//! Local Hilbert spaces: spin-1/2 sites and electron (Hubbard) sites.
//!
//! The paper's two benchmark systems are a `d = 2` spin system conserving
//! total `Sz` (one U(1) charge, stored doubled: `2Sz ∈ {+1,−1}`) and a
//! `d = 4` electron system conserving up- and down-particle number
//! (U(1)×U(1), charges `(N↑, N↓)`).

use crate::{Error, Result};
use tt_blocks::{Arrow, QnIndex, QN};
use tt_tensor::DenseTensor;

/// A type of local Hilbert space with named on-site operators.
pub trait SiteType: Clone + Send + Sync + 'static {
    /// Local dimension.
    fn d(&self) -> usize;
    /// Charge arity (1 or 2).
    fn arity(&self) -> u8;
    /// Quantum number of local basis state `s`.
    fn state_qn(&self, s: usize) -> QN;
    /// Matrix of the named operator (`d×d`, row = out state, col = in).
    fn op(&self, name: &str) -> Result<DenseTensor<f64>>;
    /// Whether the named operator is fermionic (odd under parity).
    fn is_fermionic(&self, name: &str) -> bool;
    /// Name of the local parity operator (Jordan-Wigner string element).
    fn parity_op(&self) -> &'static str {
        "F"
    }

    /// Graded physical index, sectors ordered by basis state. States with
    /// equal QN must be adjacent (true for both site types here).
    fn physical_index(&self, arrow: Arrow) -> QnIndex {
        let mut sectors: Vec<(QN, usize)> = Vec::new();
        for s in 0..self.d() {
            let q = self.state_qn(s);
            match sectors.last_mut() {
                Some((lq, d)) if *lq == q => *d += 1,
                _ => sectors.push((q, 1)),
            }
        }
        QnIndex::new(arrow, sectors)
    }

    /// The charge an operator adds to a state (`M|q⟩` has charge `q + Δ`).
    /// Errors if the matrix mixes charge shifts.
    fn op_charge(&self, name: &str) -> Result<QN> {
        let m = self.op(name)?;
        let mut delta: Option<QN> = None;
        for r in 0..self.d() {
            for c in 0..self.d() {
                if m.at(&[r, c]).abs() > 0.0 {
                    let d = self.state_qn(r).sub(self.state_qn(c));
                    match delta {
                        None => delta = Some(d),
                        Some(prev) if prev == d => {}
                        Some(prev) => {
                            return Err(Error::Op(format!(
                                "operator {name} mixes charge shifts {prev} and {d}"
                            )))
                        }
                    }
                }
            }
        }
        Ok(delta.unwrap_or_else(|| QN::zero(self.arity())))
    }
}

/// Spin-1/2 site: basis `{|↑⟩, |↓⟩}`, charge `2Sz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinHalf;

impl SiteType for SpinHalf {
    fn d(&self) -> usize {
        2
    }
    fn arity(&self) -> u8 {
        1
    }
    fn state_qn(&self, s: usize) -> QN {
        // state 0 = ↑ (2Sz=+1), state 1 = ↓ (2Sz=−1)
        QN::one(if s == 0 { 1 } else { -1 })
    }
    fn op(&self, name: &str) -> Result<DenseTensor<f64>> {
        let m = match name {
            "Id" | "F" => vec![1.0, 0.0, 0.0, 1.0],
            "Sz" => vec![0.5, 0.0, 0.0, -0.5],
            // S+|↓⟩=|↑⟩ : row ↑(0), col ↓(1)
            "S+" => vec![0.0, 1.0, 0.0, 0.0],
            "S-" => vec![0.0, 0.0, 1.0, 0.0],
            "Sx" => vec![0.0, 0.5, 0.5, 0.0],
            _ => return Err(Error::Op(format!("unknown SpinHalf operator {name:?}"))),
        };
        Ok(DenseTensor::from_vec([2, 2], m).expect("2x2"))
    }
    fn is_fermionic(&self, _name: &str) -> bool {
        false
    }
}

/// Electron site: basis `{|0⟩, |↑⟩, |↓⟩, |↑↓⟩}` with `|↑↓⟩ = c†↑c†↓|0⟩`,
/// charges `(N↑, N↓)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Electron;

impl SiteType for Electron {
    fn d(&self) -> usize {
        4
    }
    fn arity(&self) -> u8 {
        2
    }
    fn state_qn(&self, s: usize) -> QN {
        match s {
            0 => QN::two(0, 0),
            1 => QN::two(1, 0),
            2 => QN::two(0, 1),
            _ => QN::two(1, 1),
        }
    }
    fn op(&self, name: &str) -> Result<DenseTensor<f64>> {
        // basis order: 0=|0⟩, 1=|↑⟩, 2=|↓⟩, 3=|↑↓⟩, creation order c†↑ c†↓
        let mut m = vec![0.0f64; 16];
        let mut set = |r: usize, c: usize, v: f64| m[r * 4 + c] = v;
        match name {
            "Id" => {
                for i in 0..4 {
                    set(i, i, 1.0);
                }
            }
            // local fermion parity (−1)^{n↑+n↓}
            "F" => {
                set(0, 0, 1.0);
                set(1, 1, -1.0);
                set(2, 2, -1.0);
                set(3, 3, 1.0);
            }
            // annihilate ↑: c↑|↑⟩=|0⟩, c↑|↑↓⟩=c↑c†↑c†↓|0⟩=|↓⟩
            "Cup" => {
                set(0, 1, 1.0);
                set(2, 3, 1.0);
            }
            "Cdagup" => {
                set(1, 0, 1.0);
                set(3, 2, 1.0);
            }
            // annihilate ↓: c↓|↓⟩=|0⟩, c↓|↑↓⟩=−|↑⟩ (anticommute past c†↑)
            "Cdn" => {
                set(0, 2, 1.0);
                set(1, 3, -1.0);
            }
            "Cdagdn" => {
                set(2, 0, 1.0);
                set(3, 1, -1.0);
            }
            "Nup" => {
                set(1, 1, 1.0);
                set(3, 3, 1.0);
            }
            "Ndn" => {
                set(2, 2, 1.0);
                set(3, 3, 1.0);
            }
            "Ntot" => {
                set(1, 1, 1.0);
                set(2, 2, 1.0);
                set(3, 3, 2.0);
            }
            // double occupancy n↑n↓ (the Hubbard U term)
            "Nupdn" => {
                set(3, 3, 1.0);
            }
            _ => return Err(Error::Op(format!("unknown Electron operator {name:?}"))),
        }
        Ok(DenseTensor::from_vec([4, 4], m).expect("4x4"))
    }
    fn is_fermionic(&self, name: &str) -> bool {
        matches!(name, "Cup" | "Cdagup" | "Cdn" | "Cdagdn")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_tensor::{gemm_f64, Layout};

    #[test]
    fn spin_algebra() {
        let s = SpinHalf;
        let sz = s.op("Sz").unwrap();
        let sp = s.op("S+").unwrap();
        let sm = s.op("S-").unwrap();
        // [S+, S-] = 2 Sz
        let c = gemm_f64(&sp, &sm)
            .unwrap()
            .sub(&gemm_f64(&sm, &sp).unwrap())
            .unwrap();
        assert!(c.allclose(&sz.scaled(2.0), 1e-14));
        // [Sz, S+] = S+
        let c2 = gemm_f64(&sz, &sp)
            .unwrap()
            .sub(&gemm_f64(&sp, &sz).unwrap())
            .unwrap();
        assert!(c2.allclose(&sp, 1e-14));
    }

    #[test]
    fn spin_charges() {
        let s = SpinHalf;
        assert_eq!(s.op_charge("Sz").unwrap(), QN::one(0));
        assert_eq!(s.op_charge("S+").unwrap(), QN::one(2));
        assert_eq!(s.op_charge("S-").unwrap(), QN::one(-2));
        // Sx mixes charges
        assert!(s.op_charge("Sx").is_err());
        let idx = s.physical_index(Arrow::In);
        assert_eq!(idx.dim(), 2);
        assert_eq!(idx.n_sectors(), 2);
    }

    #[test]
    fn electron_anticommutators_on_site() {
        let e = Electron;
        let cup = e.op("Cup").unwrap();
        let cdup = e.op("Cdagup").unwrap();
        let cdn = e.op("Cdn").unwrap();
        let cddn = e.op("Cdagdn").unwrap();
        let id = e.op("Id").unwrap();
        // {c↑, c†↑} = 1
        let a = gemm_f64(&cup, &cdup)
            .unwrap()
            .add(&gemm_f64(&cdup, &cup).unwrap())
            .unwrap();
        assert!(a.allclose(&id, 1e-14));
        // {c↓, c†↓} = 1
        let b = gemm_f64(&cdn, &cddn)
            .unwrap()
            .add(&gemm_f64(&cddn, &cdn).unwrap())
            .unwrap();
        assert!(b.allclose(&id, 1e-14));
        // same-site cross-spin: {c↑, c↓} = 0 requires JW within the site:
        // with creation order (↑ then ↓), the true relation uses the local
        // parity: c↑ c↓ = −c↓ c↑ holds with our sign conventions
        let ab = gemm_f64(&cup, &cdn).unwrap();
        let ba = gemm_f64(&cdn, &cup).unwrap();
        assert!(ab.allclose(&ba.scaled(-1.0), 1e-14));
    }

    #[test]
    fn electron_number_ops() {
        let e = Electron;
        let nup = e.op("Nup").unwrap();
        let cdup = e.op("Cdagup").unwrap();
        let cup = e.op("Cup").unwrap();
        assert!(nup.allclose(&gemm_f64(&cdup, &cup).unwrap(), 1e-14));
        let ndn = e.op("Ndn").unwrap();
        let cddn = e.op("Cdagdn").unwrap();
        let cdn = e.op("Cdn").unwrap();
        assert!(ndn.allclose(&gemm_f64(&cddn, &cdn).unwrap(), 1e-14));
        // F = (1-2n↑)(1-2n↓)
        let f = e.op("F").unwrap();
        let id = e.op("Id").unwrap();
        let mut a = id.clone();
        a.axpy(-2.0, &nup).unwrap();
        let mut b = id.clone();
        b.axpy(-2.0, &ndn).unwrap();
        assert!(f.allclose(&gemm_f64(&a, &b).unwrap(), 1e-14));
    }

    #[test]
    fn electron_charges() {
        let e = Electron;
        assert_eq!(e.op_charge("Cdagup").unwrap(), QN::two(1, 0));
        assert_eq!(e.op_charge("Cdn").unwrap(), QN::two(0, -1));
        assert_eq!(e.op_charge("Nupdn").unwrap(), QN::two(0, 0));
        let idx = e.physical_index(Arrow::In);
        assert_eq!(idx.dim(), 4);
        assert_eq!(idx.n_sectors(), 4);
    }

    #[test]
    fn fermionic_flags() {
        let e = Electron;
        assert!(e.is_fermionic("Cup"));
        assert!(e.is_fermionic("Cdagdn"));
        assert!(!e.is_fermionic("Nup"));
        assert!(!SpinHalf.is_fermionic("S+"));
    }

    #[test]
    fn unknown_ops_rejected() {
        assert!(SpinHalf.op("Bogus").is_err());
        assert!(Electron.op("Bogus").is_err());
    }

    #[test]
    fn adjoint_pairs() {
        let e = Electron;
        for (a, b) in [("Cup", "Cdagup"), ("Cdn", "Cdagdn")] {
            let ma = e.op(a).unwrap();
            let mb = e.op(b).unwrap();
            let mat = ma.permute(&[1, 0]).unwrap();
            assert!(mat.allclose(&mb, 1e-14), "{a}^T != {b}");
        }
        let s = SpinHalf;
        let sp = s.op("S+").unwrap();
        let sm = s.op("S-").unwrap();
        assert!(sp.permute(&[1, 0]).unwrap().allclose(&sm, 1e-14));
        let _ = Layout::Normal;
    }
}

//! Matrix product operators.
//!
//! Site tensors carry indices `(k_left In, σ' In, σ Out, k_right Out)` with
//! flux 0. The bond dimension `k` is what the paper compresses: "each
//! order-4 tensor of H is truncated via SVD to a 1e-13 cutoff, resulting in
//! an MPO with a bond dimension k = 26" for the triangular Hubbard system.

use crate::autompo::ExpandedTerm;
use crate::sites::SiteType;
use crate::{Error, Result};
use tt_blocks::{block_svd, scale_bond, BlockSparseTensor};
use tt_dist::Executor;
use tt_linalg::TruncSpec;
use tt_tensor::DenseTensor;

/// A matrix product operator over block-sparse site tensors.
#[derive(Debug, Clone)]
pub struct Mpo {
    tensors: Vec<BlockSparseTensor>,
}

impl Mpo {
    /// Build from site tensors, validating bond compatibility.
    pub fn from_tensors(tensors: Vec<BlockSparseTensor>) -> Result<Self> {
        if tensors.is_empty() {
            return Err(Error::Term("empty MPO".into()));
        }
        for t in &tensors {
            if t.order() != 4 {
                return Err(Error::Term(format!(
                    "MPO site tensors must be order 4, got {}",
                    t.order()
                )));
            }
        }
        for w in tensors.windows(2) {
            if !w[0].indices()[3].contractable_with(&w[1].indices()[0]) {
                return Err(Error::Term("MPO bond indices incompatible".into()));
            }
        }
        if tensors[0].indices()[0].dim() != 1
            || tensors.last().expect("non-empty").indices()[3].dim() != 1
        {
            return Err(Error::Term("MPO boundary bonds must have dim 1".into()));
        }
        Ok(Self { tensors })
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.tensors.len()
    }

    /// Site tensor `j`.
    pub fn tensor(&self, j: usize) -> &BlockSparseTensor {
        &self.tensors[j]
    }

    /// All site tensors.
    pub fn tensors(&self) -> &[BlockSparseTensor] {
        &self.tensors
    }

    /// Replace site tensor `j`.
    pub fn set_tensor(&mut self, j: usize, t: BlockSparseTensor) {
        self.tensors[j] = t;
    }

    /// Bond dimensions (length `n_sites + 1`, boundaries included).
    pub fn bond_dims(&self) -> Vec<usize> {
        let mut out = vec![self.tensors[0].indices()[0].dim()];
        for t in &self.tensors {
            out.push(t.indices()[3].dim());
        }
        out
    }

    /// Maximum bond dimension `k`.
    pub fn max_bond_dim(&self) -> usize {
        self.bond_dims().into_iter().max().unwrap_or(0)
    }

    /// Materialize the full `d^n × d^n` operator matrix (small `n` only;
    /// used by validation tests).
    pub fn to_dense_matrix(&self) -> Result<DenseTensor<f64>> {
        let n = self.n_sites();
        let d = self.tensors[0].indices()[1].dim();
        // acc[out, in, k]
        let w0 = self.tensors[0].to_dense(); // [1, d, d, k]
        let k0 = w0.dims()[3];
        let mut acc = w0.reshape([d, d, k0]).map_err(wrap)?;
        for j in 1..n {
            let wj = self.tensors[j].to_dense(); // [k, d, d, k2]
                                                 // acc[o,i,k] ⋅ wj[k,a,b,r] -> [o,a,i,b,r]
            let next = tt_tensor::einsum("oik,kabr->oaibr", &acc, &wj).map_err(wrap)?;
            let o = acc.dims()[0] * d;
            let i = acc.dims()[1] * d;
            let r = wj.dims()[3];
            acc = next.reshape([o, i, r]).map_err(wrap)?;
        }
        let dn = acc.dims()[0];
        acc.reshape([dn, dn]).map_err(wrap)
    }

    /// Operator sum `self + other` via direct-sum bonds (block-diagonal
    /// bulk tensors, concatenated boundaries). Compose Hamiltonians as
    /// `H = H₀ + λV` and recompress with [`Mpo::compress`].
    pub fn add(&self, other: &Mpo) -> Result<Mpo> {
        let n = self.n_sites();
        if other.n_sites() != n {
            return Err(Error::Term("sum of different sizes".into()));
        }
        use tt_blocks::{BlockSparseTensor, QnIndex};
        let mut tensors = Vec::with_capacity(n);
        for j in 0..n {
            let a = &self.tensors[j];
            let b = &other.tensors[j];
            let share_left = j == 0;
            let share_right = j == n - 1;
            if (share_left && a.indices()[0] != b.indices()[0])
                || (share_right && a.indices()[3] != b.indices()[3])
            {
                return Err(Error::Term("boundary indices differ".into()));
            }
            if a.indices()[1] != b.indices()[1] || a.indices()[2] != b.indices()[2] {
                return Err(Error::Term("physical indices differ".into()));
            }
            let concat = |ia: &QnIndex, ib: &QnIndex| -> QnIndex {
                let mut sectors = ia.sectors().to_vec();
                sectors.extend_from_slice(ib.sectors());
                QnIndex::new(ia.arrow(), sectors)
            };
            let left = if share_left {
                a.indices()[0].clone()
            } else {
                concat(&a.indices()[0], &b.indices()[0])
            };
            let right = if share_right {
                a.indices()[3].clone()
            } else {
                concat(&a.indices()[3], &b.indices()[3])
            };
            let mut t = BlockSparseTensor::new(
                vec![left, a.indices()[1].clone(), a.indices()[2].clone(), right],
                a.flux(),
            );
            let l_shift = if share_left {
                0u16
            } else {
                a.indices()[0].n_sectors() as u16
            };
            let r_shift = if share_right {
                0u16
            } else {
                a.indices()[3].n_sectors() as u16
            };
            for (key, block) in a.blocks() {
                t.insert_block(key.clone(), block.clone())
                    .map_err(|e| Error::Term(e.to_string()))?;
            }
            for (key, block) in b.blocks() {
                let nk = vec![key[0] + l_shift, key[1], key[2], key[3] + r_shift];
                if let Some(existing) = t.block(&nk) {
                    let mut acc = existing.clone();
                    acc.axpy(1.0, block)
                        .map_err(|e| Error::Term(e.to_string()))?;
                    t.insert_block(nk, acc)
                        .map_err(|e| Error::Term(e.to_string()))?;
                } else {
                    t.insert_block(nk, block.clone())
                        .map_err(|e| Error::Term(e.to_string()))?;
                }
            }
            tensors.push(t);
        }
        Mpo::from_tensors(tensors)
    }

    /// Scale the operator by a constant.
    pub fn scale(&mut self, c: f64) {
        if let Some(t) = self.tensors.first_mut() {
            t.scale_mut(c);
        }
    }

    /// SVD-compress the MPO with an absolute singular-value cutoff
    /// (left→right then right→left sweep). Returns the new max bond
    /// dimension.
    pub fn compress(&mut self, exec: &Executor, cutoff: f64) -> Result<usize> {
        let n = self.n_sites();
        let spec = TruncSpec {
            max_rank: usize::MAX,
            cutoff,
            min_keep: 1,
        };
        // left → right: t_j = U, push S·Vt into t_{j+1}
        for j in 0..n - 1 {
            let svd = block_svd(exec, &self.tensors[j], &[0, 1, 2], &[3], spec)
                .map_err(|e| Error::Term(e.to_string()))?;
            let mut svt = svd.vt;
            scale_bond(&mut svt, 0, &svd.s, false).map_err(|e| Error::Term(e.to_string()))?;
            let merged = tt_blocks::contract::contract_list(
                exec,
                "xk,kabr->xabr",
                &svt,
                &self.tensors[j + 1],
            )
            .map_err(|e| Error::Term(e.to_string()))?;
            self.tensors[j] = svd.u;
            self.tensors[j + 1] = merged;
        }
        // right → left: t_j = Vt, push U·S into t_{j-1}
        for j in (1..n).rev() {
            let svd = block_svd(exec, &self.tensors[j], &[0], &[1, 2, 3], spec)
                .map_err(|e| Error::Term(e.to_string()))?;
            let mut us = svd.u;
            scale_bond(&mut us, 1, &svd.s, false).map_err(|e| Error::Term(e.to_string()))?;
            let merged = tt_blocks::contract::contract_list(
                exec,
                "labk,kx->labx",
                &self.tensors[j - 1],
                &us,
            )
            .map_err(|e| Error::Term(e.to_string()))?;
            self.tensors[j] = svd.vt;
            self.tensors[j - 1] = merged;
        }
        Ok(self.max_bond_dim())
    }
}

fn wrap(e: tt_tensor::Error) -> Error {
    Error::Term(e.to_string())
}

/// Dense `d^n × d^n` Hamiltonian from Jordan-Wigner-expanded terms — the
/// reference construction used to validate AutoMPO output.
pub fn dense_from_terms<S: SiteType>(
    site: &S,
    n: usize,
    terms: &[ExpandedTerm],
) -> DenseTensor<f64> {
    let d = site.d();
    let dn = d.pow(n as u32);
    let id = site.op("Id").expect("Id exists");
    let mut h = DenseTensor::<f64>::zeros([dn, dn]);
    for term in terms {
        // per-site matrices, Id outside the span
        let mut site_mats: Vec<DenseTensor<f64>> = vec![id.clone(); n];
        for (s, m) in &term.factors {
            site_mats[*s] = m.clone();
        }
        // kron product left to right
        let mut acc = site_mats[0].clone();
        for m in &site_mats[1..] {
            acc = kron(&acc, m);
        }
        h.axpy(term.coef, &acc).expect("same dims");
    }
    h
}

/// Kronecker product of two matrices.
pub fn kron(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> DenseTensor<f64> {
    let (ra, ca) = (a.dims()[0], a.dims()[1]);
    let (rb, cb) = (b.dims()[0], b.dims()[1]);
    DenseTensor::from_fn([ra * rb, ca * cb], |idx| {
        let (i, j) = (idx[0], idx[1]);
        a.at(&[i / rb, j / cb]) * b.at(&[i % rb, j % cb])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autompo::AutoMpo;
    use crate::sites::SpinHalf;

    fn heisenberg(n: usize) -> AutoMpo<SpinHalf> {
        let mut b = AutoMpo::new(SpinHalf, n);
        for i in 0..n - 1 {
            b.add(1.0, &[(i, "Sz"), (i + 1, "Sz")]);
            b.add(0.5, &[(i, "S+"), (i + 1, "S-")]);
            b.add(0.5, &[(i, "S-"), (i + 1, "S+")]);
        }
        b
    }

    #[test]
    fn kron_matches_manual() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = DenseTensor::<f64>::eye(2);
        let k = kron(&a, &i);
        assert_eq!(k.dims(), &[4, 4]);
        assert_eq!(k.at(&[0, 0]), 1.0);
        assert_eq!(k.at(&[1, 1]), 1.0);
        assert_eq!(k.at(&[0, 2]), 2.0);
        assert_eq!(k.at(&[2, 0]), 3.0);
    }

    #[test]
    fn bond_dims_and_boundaries() {
        let mpo = heisenberg(5).build().unwrap();
        let bd = mpo.bond_dims();
        assert_eq!(bd.len(), 6);
        assert_eq!(bd[0], 1);
        assert_eq!(*bd.last().unwrap(), 1);
        assert_eq!(mpo.max_bond_dim(), 5);
    }

    #[test]
    fn compress_preserves_operator() {
        let mpo = heisenberg(5).build().unwrap();
        let before = mpo.to_dense_matrix().unwrap();
        let mut compressed = mpo.clone();
        let exec = Executor::local();
        let k = compressed.compress(&exec, 1e-13).unwrap();
        assert!(k <= 5);
        let after = compressed.to_dense_matrix().unwrap();
        assert!(after.allclose(&before, 1e-8));
    }

    #[test]
    fn compress_reduces_padded_mpo() {
        // adding the same term twice doubles FSM states; compression must
        // recover the canonical k=5
        let n = 5;
        let mut b = AutoMpo::new(SpinHalf, n);
        for _ in 0..2 {
            for i in 0..n - 1 {
                b.add(0.5, &[(i, "Sz"), (i + 1, "Sz")]);
                b.add(0.25, &[(i, "S+"), (i + 1, "S-")]);
                b.add(0.25, &[(i, "S-"), (i + 1, "S+")]);
            }
        }
        let mut mpo = b.build().unwrap();
        // deparallelization inside build already merges duplicates
        assert_eq!(mpo.max_bond_dim(), 5);
        let exec = Executor::local();
        let k = mpo.compress(&exec, 1e-13).unwrap();
        assert!(k <= 5);
    }

    #[test]
    fn mpo_sum_equals_dense_sum() {
        let n = 4;
        let h1 = heisenberg(n).build().unwrap();
        let mut b2 = AutoMpo::new(SpinHalf, n);
        for i in 0..n {
            b2.add(0.3, &[(i, "Sz")]);
        }
        let h2 = b2.build().unwrap();
        let sum = h1.add(&h2).unwrap();
        let expect = h1
            .to_dense_matrix()
            .unwrap()
            .add(&h2.to_dense_matrix().unwrap())
            .unwrap();
        assert!(sum.to_dense_matrix().unwrap().allclose(&expect, 1e-10));
        // bond dims add in the bulk
        assert!(sum.max_bond_dim() <= h1.max_bond_dim() + h2.max_bond_dim());
        // compression shrinks the direct sum back toward canonical size
        let mut c = sum.clone();
        let exec = Executor::local();
        let k = c.compress(&exec, 1e-12).unwrap();
        assert!(k <= h1.max_bond_dim() + h2.max_bond_dim());
        assert!(c.to_dense_matrix().unwrap().allclose(&expect, 1e-8));
    }

    #[test]
    fn mpo_sum_with_itself_doubles() {
        let h = heisenberg(4).build().unwrap();
        let sum = h.add(&h).unwrap();
        let expect = h.to_dense_matrix().unwrap().scaled(2.0);
        assert!(sum.to_dense_matrix().unwrap().allclose(&expect, 1e-10));
    }

    #[test]
    fn mpo_scale() {
        let mut h = heisenberg(3).build().unwrap();
        let before = h.to_dense_matrix().unwrap();
        h.scale(-2.5);
        assert!(h
            .to_dense_matrix()
            .unwrap()
            .allclose(&before.scaled(-2.5), 1e-12));
    }

    #[test]
    fn mpo_sum_size_mismatch_rejected() {
        let h3 = heisenberg(3).build().unwrap();
        let h4 = heisenberg(4).build().unwrap();
        assert!(h3.add(&h4).is_err());
    }

    #[test]
    fn hermitian_dense_matrix() {
        let mpo = heisenberg(4).build().unwrap();
        let h = mpo.to_dense_matrix().unwrap();
        let ht = h.permute(&[1, 0]).unwrap();
        assert!(h.allclose(&ht, 1e-12));
    }
}

//! AutoMPO: build a matrix product operator from a sum of operator strings.
//!
//! The paper encodes both Hamiltonians "exactly the same MPO ITensor
//! generates by directly using their AutoMPO functionality". This module
//! reimplements that pipeline:
//!
//! 1. terms are added as `coef · Op(site₁) · Op(site₂) …`,
//! 2. fermionic operators are Jordan-Wigner expanded — operators are
//!    reordered by site (tracking the anticommutation sign), dressed with
//!    the local parity `F` where an odd number of fermionic operators sits
//!    to their right, and `F` strings fill the gaps,
//! 3. a finite-state machine allocates one MPO bond state per in-flight
//!    term and emits order-4 site tensors,
//! 4. parallel/zero bond states are removed (deparallelization), the
//!    compression step that gives the Hubbard MPO its small `k` (the paper
//!    reports `k = 26` after an SVD cutoff of 1e-13).

use crate::mpo::Mpo;
use crate::sites::SiteType;
use crate::{Error, Result};
use tt_blocks::{Arrow, BlockSparseTensor, QnIndex, QN};
use tt_tensor::{gemm_f64, DenseTensor};

/// One operator string: `coef · Π Op(site)`.
#[derive(Debug, Clone)]
pub struct OpTerm {
    /// Scalar coefficient.
    pub coef: f64,
    /// `(site, operator name)` factors in *operator order* (right-most acts
    /// first); sites may repeat.
    pub ops: Vec<(usize, String)>,
}

impl OpTerm {
    /// Convenience constructor.
    pub fn new(coef: f64, ops: &[(usize, &str)]) -> Self {
        OpTerm {
            coef,
            ops: ops.iter().map(|&(s, n)| (s, n.to_string())).collect(),
        }
    }
}

/// A term expanded to one local matrix per touched site (Jordan-Wigner
/// strings included), ready for both the MPO FSM and exact diagonalization.
#[derive(Debug, Clone)]
pub struct ExpandedTerm {
    /// Coefficient including reordering signs.
    pub coef: f64,
    /// `(site, matrix)` in ascending site order, covering every site in
    /// `[first, last]` (gaps carry `F` or `Id`).
    pub factors: Vec<(usize, DenseTensor<f64>)>,
}

impl ExpandedTerm {
    /// First touched site.
    pub fn first(&self) -> usize {
        self.factors.first().expect("non-empty").0
    }
    /// Last touched site.
    pub fn last(&self) -> usize {
        self.factors.last().expect("non-empty").0
    }
}

/// Jordan-Wigner expand a term on `n` sites.
pub fn expand_term<S: SiteType>(site: &S, n: usize, term: &OpTerm) -> Result<ExpandedTerm> {
    if term.ops.is_empty() {
        return Err(Error::Term("empty operator string".into()));
    }
    for &(s, _) in &term.ops {
        if s >= n {
            return Err(Error::Term(format!("site {s} out of range (n={n})")));
        }
    }
    // stable reorder by site, counting fermionic transpositions
    let mut ops: Vec<(usize, String, bool)> = term
        .ops
        .iter()
        .map(|(s, o)| (*s, o.clone(), site.is_fermionic(o)))
        .collect();
    let mut sign = 1.0f64;
    // bubble sort to count adjacent transpositions of fermionic pairs
    let len = ops.len();
    for i in 0..len {
        for j in 0..len - 1 - i {
            if ops[j].0 > ops[j + 1].0 {
                if ops[j].2 && ops[j + 1].2 {
                    sign = -sign;
                }
                ops.swap(j, j + 1);
            }
        }
    }

    // per position: parity of fermionic ops strictly to the right
    let total_fermi: usize = ops.iter().filter(|o| o.2).count();
    if !total_fermi.is_multiple_of(2) {
        return Err(Error::Term("odd number of fermionic operators".into()));
    }
    let mut right_parity = vec![0usize; ops.len() + 1];
    for i in (0..ops.len()).rev() {
        right_parity[i] = right_parity[i + 1] + usize::from(ops[i].2);
    }

    // build per-site matrices over the span
    let first = ops.first().expect("non-empty").0;
    let last = ops.last().expect("non-empty").0;
    let f_mat = site.op(site.parity_op())?;
    let id = site.op("Id")?;

    let mut factors: Vec<(usize, DenseTensor<f64>)> = Vec::new();
    let mut k = 0usize; // next operator to place
    for s in first..=last {
        let mut m: Option<DenseTensor<f64>> = None;
        // multiply all ops on this site (operator order was preserved for
        // equal sites by the stable sort)
        while k < ops.len() && ops[k].0 == s {
            let mut om = site.op(&ops[k].1)?;
            // dress with F when an odd number of fermionic ops remains to
            // the right: O → O·F (F applied first)
            if right_parity[k + 1] % 2 == 1 {
                om = gemm_f64(&om, &f_mat)?;
            }
            m = Some(match m {
                // operator order: earlier entry acts *later* ⇒ multiply on
                // the left
                Some(prev) => gemm_f64(&prev, &om)?,
                None => om,
            });
            k += 1;
        }
        let mat = match m {
            Some(m) => m,
            None => {
                // gap site: F string when an odd number of fermionic ops
                // remains to the right
                if right_parity[k] % 2 == 1 {
                    f_mat.clone()
                } else {
                    id.clone()
                }
            }
        };
        factors.push((s, mat));
    }
    Ok(ExpandedTerm {
        coef: term.coef * sign,
        factors,
    })
}

/// AutoMPO builder over a uniform site type.
#[derive(Debug, Clone)]
pub struct AutoMpo<S: SiteType> {
    site: S,
    n: usize,
    terms: Vec<OpTerm>,
}

impl<S: SiteType> AutoMpo<S> {
    /// New builder for `n` sites of type `site`.
    pub fn new(site: S, n: usize) -> Self {
        Self {
            site,
            n,
            terms: Vec::new(),
        }
    }

    /// Number of sites.
    pub fn n_sites(&self) -> usize {
        self.n
    }

    /// Add `coef · Op₁(s₁) · Op₂(s₂) …`.
    pub fn add(&mut self, coef: f64, ops: &[(usize, &str)]) -> &mut Self {
        self.terms.push(OpTerm::new(coef, ops));
        self
    }

    /// The accumulated terms.
    pub fn terms(&self) -> &[OpTerm] {
        &self.terms
    }

    /// Jordan-Wigner expand all terms (shared by MPO build and ED).
    pub fn expanded(&self) -> Result<Vec<ExpandedTerm>> {
        self.terms
            .iter()
            .map(|t| expand_term(&self.site, self.n, t))
            .collect()
    }

    /// Build the MPO via the finite-state machine + deparallelization.
    pub fn build(&self) -> Result<Mpo> {
        let expanded: Vec<ExpandedTerm> = self
            .expanded()?
            .into_iter()
            .filter(|t| t.coef != 0.0)
            .collect();
        let d = self.site.d();
        let arity = self.site.arity();
        let n = self.n;
        if expanded.is_empty() {
            // the zero operator: bond dimension 1, no stored blocks
            let tensors: Vec<BlockSparseTensor> = (0..n)
                .map(|_| {
                    BlockSparseTensor::new(
                        vec![
                            QnIndex::trivial(Arrow::In, 1, arity),
                            self.site.physical_index(Arrow::In),
                            self.site.physical_index(Arrow::Out),
                            QnIndex::trivial(Arrow::Out, 1, arity),
                        ],
                        QN::zero(arity),
                    )
                })
                .collect();
            return Mpo::from_tensors(tensors);
        }

        // --- FSM state allocation -------------------------------------
        // bond b sits between sites b and b+1 (b in 0..n-1); states:
        //   0 = "ready" (identity to the left), 1 = "done"; term states
        //   allocated for spans crossing the bond. Each state carries the
        //   accumulated charge of the operators placed so far.
        #[derive(Clone)]
        struct BondStates {
            /// charge of each state (state ids are indices)
            charges: Vec<QN>,
        }
        let zero = QN::zero(arity);
        let mut bonds: Vec<BondStates> = (0..n + 1)
            .map(|_| BondStates {
                charges: vec![zero, zero],
            })
            .collect();
        // per term, per crossed bond: state id
        let mut term_states: Vec<Vec<(usize, usize)>> = Vec::new(); // (bond, state)
        for term in &expanded {
            let mut states = Vec::new();
            let mut acc = zero;
            for (s, mat) in &term.factors {
                // charge of this factor
                let delta = matrix_charge(&self.site, mat)?;
                // bond to the right of site s
                acc = acc.add(delta);
                let b = s + 1;
                if *s < term.last() {
                    // bond charge convention: q(right bond) = q(left) + Δ
                    // (with W = (kl In, σ' In, σ Out, kr Out), conservation
                    // reads q(kr) = q(kl) + q(σ') − q(σ))
                    let id = bonds[b].charges.len();
                    bonds[b].charges.push(acc);
                    states.push((b, id));
                }
            }
            term_states.push(states);
        }

        // --- emit dense site tensors [Dl, σ', σ, Dr] --------------------
        let mut ws: Vec<DenseTensor<f64>> = Vec::with_capacity(n);
        for j in 0..n {
            let dl = bonds[j].charges.len();
            let dr = bonds[j + 1].charges.len();
            let mut w = DenseTensor::<f64>::zeros([dl, d, d, dr]);
            // identity chains
            add_op(&mut w, 0, 0, &self.site.op("Id")?, 1.0);
            add_op(&mut w, 1, 1, &self.site.op("Id")?, 1.0);
            for (term, states) in expanded.iter().zip(&term_states) {
                let first = term.first();
                let last = term.last();
                if j < first || j > last {
                    continue;
                }
                let (_, mat) = term
                    .factors
                    .iter()
                    .find(|(s, _)| *s == j)
                    .expect("span covered");
                let lstate = if j == first {
                    0
                } else {
                    states
                        .iter()
                        .find(|(b, _)| *b == j)
                        .map(|&(_, id)| id)
                        .expect("crossing state")
                };
                let rstate = if j == last {
                    1
                } else {
                    states
                        .iter()
                        .find(|(b, _)| *b == j + 1)
                        .map(|&(_, id)| id)
                        .expect("crossing state")
                };
                // absorb the coefficient at the first site
                let c = if j == first { term.coef } else { 1.0 };
                add_op(&mut w, lstate, rstate, mat, c);
            }
            ws.push(w);
        }
        let mut charges: Vec<Vec<QN>> = bonds.into_iter().map(|b| b.charges).collect();

        // boundary projection: first bond keeps state 0, last keeps state 1
        project_boundary(&mut ws, &mut charges)?;

        // deparallelization compression
        deparallelize(&mut ws, &mut charges)?;

        // --- convert to block-sparse site tensors -----------------------
        let tensors = to_block_tensors(&self.site, &ws, &charges)?;
        Mpo::from_tensors(tensors)
    }
}

/// Charge shift of a local matrix (like `SiteType::op_charge` but from the
/// matrix itself, so products of named ops work too).
fn matrix_charge<S: SiteType>(site: &S, m: &DenseTensor<f64>) -> Result<QN> {
    let d = site.d();
    let mut delta: Option<QN> = None;
    for r in 0..d {
        for c in 0..d {
            if m.at(&[r, c]).abs() > 0.0 {
                let dd = site.state_qn(r).sub(site.state_qn(c));
                match delta {
                    None => delta = Some(dd),
                    Some(p) if p == dd => {}
                    Some(p) => {
                        return Err(Error::Term(format!(
                            "factor mixes charge shifts {p} and {dd}"
                        )))
                    }
                }
            }
        }
    }
    Ok(delta.unwrap_or_else(|| QN::zero(site.arity())))
}

fn add_op(w: &mut DenseTensor<f64>, l: usize, r: usize, m: &DenseTensor<f64>, coef: f64) {
    let d = m.dims()[0];
    for a in 0..d {
        for b in 0..d {
            let v = w.at(&[l, a, b, r]) + coef * m.at(&[a, b]);
            w.set(&[l, a, b, r], v);
        }
    }
}

/// Slice the first tensor to left state 0 and the last to right state 1.
fn project_boundary(ws: &mut [DenseTensor<f64>], charges: &mut [Vec<QN>]) -> Result<()> {
    let n = ws.len();
    if n == 0 {
        return Ok(());
    }
    // left boundary
    {
        let w = &ws[0];
        let (_, d, _, dr) = dims4(w);
        let mut out = DenseTensor::zeros([1, d, d, dr]);
        for a in 0..d {
            for b in 0..d {
                for r in 0..dr {
                    out.set(&[0, a, b, r], w.at(&[0, a, b, r]));
                }
            }
        }
        ws[0] = out;
        charges[0] = vec![charges[0][0]];
    }
    // right boundary
    {
        let w = &ws[n - 1];
        let (dl, d, _, _) = dims4(w);
        let mut out = DenseTensor::zeros([dl, d, d, 1]);
        for l in 0..dl {
            for a in 0..d {
                for b in 0..d {
                    out.set(&[l, a, b, 0], w.at(&[l, a, b, 1]));
                }
            }
        }
        ws[n - 1] = out;
        charges[n] = vec![charges[n][1]];
    }
    Ok(())
}

fn dims4(w: &DenseTensor<f64>) -> (usize, usize, usize, usize) {
    let d = w.dims();
    (d[0], d[1], d[2], d[3])
}

/// Remove zero columns and merge parallel columns (left→right), then the
/// mirror pass on rows (right→left). Repeats until fixed point.
fn deparallelize(ws: &mut [DenseTensor<f64>], charges: &mut [Vec<QN>]) -> Result<()> {
    let n = ws.len();
    loop {
        let mut changed = false;
        // forward: compress columns of W_j, push transfer into W_{j+1}
        for j in 0..n - 1 {
            let (dl, d, _, dr) = dims4(&ws[j]);
            // matricize (dl·d·d) × dr
            let mat = ws[j].clone().reshape([dl * d * d, dr]).map_err(wrap)?;
            let (keep, transfer) = column_depar(&mat, &charges[j + 1]);
            if keep.len() == dr {
                continue;
            }
            changed = true;
            // rebuild W_j with kept columns
            let mut njw = DenseTensor::zeros([dl, d, d, keep.len()]);
            for (nc, &(oc, _)) in keep.iter().enumerate() {
                for l in 0..dl {
                    for a in 0..d {
                        for b in 0..d {
                            njw.set(&[l, a, b, nc], ws[j].at(&[l, a, b, oc]));
                        }
                    }
                }
            }
            // transfer matrix T (keep.len() × dr): col oc = Σ T[nc,oc]·kept nc
            // fold into W_{j+1}: new W_{j+1}[nc,...] = Σ_oc T[nc,oc]·W_{j+1}[oc,...]
            let (dl2, d2, _, dr2) = dims4(&ws[j + 1]);
            debug_assert_eq!(dl2, dr);
            let mut njw2 = DenseTensor::zeros([keep.len(), d2, d2, dr2]);
            for (oc, row) in transfer.iter().enumerate() {
                for &(nc, c) in row {
                    for a in 0..d2 {
                        for b in 0..d2 {
                            for r in 0..dr2 {
                                let v = njw2.at(&[nc, a, b, r]) + c * ws[j + 1].at(&[oc, a, b, r]);
                                njw2.set(&[nc, a, b, r], v);
                            }
                        }
                    }
                }
            }
            ws[j] = njw;
            ws[j + 1] = njw2;
            charges[j + 1] = keep.iter().map(|&(_, q)| q).collect();
        }
        // backward: compress rows of W_j, push transfer into W_{j-1}
        for j in (1..n).rev() {
            let (dl, d, _, dr) = dims4(&ws[j]);
            // matricize dl × (d·d·dr): rows
            let mat = ws[j].clone().reshape([dl, d * d * dr]).map_err(wrap)?;
            let matt = mat.permute(&[1, 0]).map_err(wrap)?;
            let (keep, transfer) = column_depar(&matt, &charges[j]);
            if keep.len() == dl {
                continue;
            }
            changed = true;
            let mut njw = DenseTensor::zeros([keep.len(), d, d, dr]);
            for (nr, &(or, _)) in keep.iter().enumerate() {
                for a in 0..d {
                    for b in 0..d {
                        for r in 0..dr {
                            njw.set(&[nr, a, b, r], ws[j].at(&[or, a, b, r]));
                        }
                    }
                }
            }
            let (dl1, d1, _, dr1) = dims4(&ws[j - 1]);
            debug_assert_eq!(dr1, dl);
            let mut njw1 = DenseTensor::zeros([dl1, d1, d1, keep.len()]);
            for (or, row) in transfer.iter().enumerate() {
                for &(nr, c) in row {
                    for l in 0..dl1 {
                        for a in 0..d1 {
                            for b in 0..d1 {
                                let v = njw1.at(&[l, a, b, nr]) + c * ws[j - 1].at(&[l, a, b, or]);
                                njw1.set(&[l, a, b, nr], v);
                            }
                        }
                    }
                }
            }
            ws[j] = njw;
            ws[j - 1] = njw1;
            charges[j] = keep.iter().map(|&(_, q)| q).collect();
        }
        if !changed {
            break;
        }
    }
    Ok(())
}

fn wrap(e: tt_tensor::Error) -> Error {
    Error::Term(e.to_string())
}

/// Column deparallelization of an `r×c` matrix whose columns carry charges:
/// returns kept columns `(old index, charge)` and, per old column, its
/// expansion `[(kept index, coefficient)]`.
#[allow(clippy::type_complexity)]
fn column_depar(
    mat: &DenseTensor<f64>,
    col_charges: &[QN],
) -> (Vec<(usize, QN)>, Vec<Vec<(usize, f64)>>) {
    let (r, c) = (mat.dims()[0], mat.dims()[1]);
    let mut keep: Vec<(usize, QN)> = Vec::new();
    let mut transfer: Vec<Vec<(usize, f64)>> = vec![Vec::new(); c];
    let col = |j: usize| -> Vec<f64> { (0..r).map(|i| mat.at(&[i, j])).collect() };
    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for j in 0..c {
        let vj = col(j);
        let nj = norm(&vj);
        if nj <= 1e-14 {
            continue; // zero column: drop entirely
        }
        // parallel to an already-kept column of the same charge?
        let mut matched = false;
        for (ki, &(kc, kq)) in keep.iter().enumerate() {
            if kq != col_charges[j] {
                continue;
            }
            let vk = col(kc);
            let nk = norm(&vk);
            let dot: f64 = vj.iter().zip(&vk).map(|(a, b)| a * b).sum();
            let ratio = dot / (nk * nk);
            // parallel iff vj == ratio·vk
            let mut dist2 = 0.0;
            for (a, b) in vj.iter().zip(&vk) {
                let dd = a - ratio * b;
                dist2 += dd * dd;
            }
            if dist2.sqrt() <= 1e-12 * nj.max(1.0) {
                transfer[j].push((ki, ratio));
                matched = true;
                break;
            }
        }
        if !matched {
            transfer[j].push((keep.len(), 1.0));
            keep.push((j, col_charges[j]));
        }
    }
    (keep, transfer)
}

/// Convert dense MPO site tensors + bond charges to block-sparse tensors.
fn to_block_tensors<S: SiteType>(
    site: &S,
    ws: &[DenseTensor<f64>],
    charges: &[Vec<QN>],
) -> Result<Vec<BlockSparseTensor>> {
    let n = ws.len();
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        // bond states must be grouped by charge for the graded index: build
        // a permutation sorting states by charge (stable)
        let sort_perm = |ch: &[QN]| -> (Vec<usize>, QnIndex, QnIndex) {
            let mut order: Vec<usize> = (0..ch.len()).collect();
            order.sort_by_key(|&i| ch[i]);
            let mut sectors: Vec<(QN, usize)> = Vec::new();
            for &i in &order {
                match sectors.last_mut() {
                    Some((q, d)) if *q == ch[i] => *d += 1,
                    _ => sectors.push((ch[i], 1)),
                }
            }
            (
                order,
                QnIndex::new(Arrow::In, sectors.clone()),
                QnIndex::new(Arrow::Out, sectors),
            )
        };
        let (lorder, lidx, _) = sort_perm(&charges[j]);
        let (rorder, _, ridx) = sort_perm(&charges[j + 1]);
        let (dl, d, _, dr) = dims4(&ws[j]);
        // permuted dense tensor
        let mut dense = DenseTensor::zeros([dl, d, d, dr]);
        for (nl, &ol) in lorder.iter().enumerate() {
            for a in 0..d {
                for b in 0..d {
                    for (nr, &or) in rorder.iter().enumerate() {
                        dense.set(&[nl, a, b, nr], ws[j].at(&[ol, a, b, or]));
                    }
                }
            }
        }
        // MPO site tensor W(kl In, σ' In, σ Out, kr Out): the ket-side
        // physical index points Out so it contracts with an MPS tensor's
        // In, and the bra-side In contracts with a conjugated MPS tensor.
        let indices = vec![
            lidx,
            site.physical_index(Arrow::In),
            site.physical_index(Arrow::Out),
            ridx,
        ];
        let t = BlockSparseTensor::from_dense(indices, QN::zero(site.arity()), &dense, 0.0)
            .map_err(|e| Error::Term(format!("MPO block conversion: {e}")))?;
        // verify nothing was lost to symmetry filtering
        let diff = t.to_dense().max_diff(&dense).map_err(wrap)?;
        if diff > 1e-12 {
            return Err(Error::Term(format!(
                "MPO site {j} has symmetry-forbidden entries (max {diff:.2e}); \
                 charge propagation is inconsistent"
            )));
        }
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{Electron, SpinHalf};

    #[test]
    fn expand_plain_term() {
        let t = OpTerm::new(2.0, &[(1, "Sz"), (3, "Sz")]);
        let e = expand_term(&SpinHalf, 5, &t).unwrap();
        assert_eq!(e.coef, 2.0);
        assert_eq!(e.first(), 1);
        assert_eq!(e.last(), 3);
        assert_eq!(e.factors.len(), 3); // sites 1,2,3 with Id gap
        let gap = &e.factors[1].1;
        assert!(gap.allclose(&SpinHalf.op("Id").unwrap(), 0.0));
    }

    #[test]
    fn expand_fermion_pair_forward() {
        // c†_0 c_2: site0 = Cdagup·F, site1 = F, site2 = Cup
        let t = OpTerm::new(1.0, &[(0, "Cdagup"), (2, "Cup")]);
        let e = expand_term(&Electron, 3, &t).unwrap();
        assert_eq!(e.coef, 1.0);
        let f = Electron.op("F").unwrap();
        let expect0 = gemm_f64(&Electron.op("Cdagup").unwrap(), &f).unwrap();
        assert!(e.factors[0].1.allclose(&expect0, 1e-14));
        assert!(e.factors[1].1.allclose(&f, 1e-14));
        assert!(e.factors[2].1.allclose(&Electron.op("Cup").unwrap(), 1e-14));
    }

    #[test]
    fn expand_fermion_pair_reversed() {
        // c†_2 c_0 = −c_0 c†_2 → site0 = −(Cup·F)?? the sign and F dressing
        // combine to F·Cup at site 0 and Cdagup at site 2 (see derivation in
        // the module docs); verify against a 2-site dense construction
        let t = OpTerm::new(1.0, &[(2, "Cdagup"), (0, "Cup")]);
        let e = expand_term(&Electron, 3, &t).unwrap();
        // reorder sign: swapping two fermionic ops = −1
        assert_eq!(e.coef, -1.0);
        // factor at site 0 is Cup·F (dressed), which equals −F·Cup
        let f = Electron.op("F").unwrap();
        let cupf = gemm_f64(&Electron.op("Cup").unwrap(), &f).unwrap();
        assert!(e.factors[0].1.allclose(&cupf, 1e-14));
        assert!(e.factors[2]
            .1
            .allclose(&Electron.op("Cdagup").unwrap(), 1e-14));
    }

    #[test]
    fn odd_fermion_count_rejected() {
        let t = OpTerm::new(1.0, &[(0, "Cup")]);
        assert!(expand_term(&Electron, 2, &t).is_err());
    }

    #[test]
    fn heisenberg_chain_mpo_bond_dim() {
        // nearest-neighbour Heisenberg: canonical MPO bond dimension is 5
        let n = 6;
        let mut b = AutoMpo::new(SpinHalf, n);
        for i in 0..n - 1 {
            b.add(1.0, &[(i, "Sz"), (i + 1, "Sz")]);
            b.add(0.5, &[(i, "S+"), (i + 1, "S-")]);
            b.add(0.5, &[(i, "S-"), (i + 1, "S+")]);
        }
        let mpo = b.build().unwrap();
        assert_eq!(mpo.n_sites(), n);
        let k = mpo.max_bond_dim();
        assert_eq!(k, 5, "NN Heisenberg compresses to k=5");
    }

    #[test]
    fn single_site_field_mpo() {
        let n = 4;
        let mut b = AutoMpo::new(SpinHalf, n);
        for i in 0..n {
            b.add(-0.7, &[(i, "Sz")]);
        }
        let mpo = b.build().unwrap();
        assert_eq!(mpo.max_bond_dim(), 2);
    }

    #[test]
    fn hubbard_chain_mpo_builds() {
        let n = 4;
        let mut b = AutoMpo::new(Electron, n);
        for i in 0..n - 1 {
            for (cd, c) in [("Cdagup", "Cup"), ("Cdagdn", "Cdn")] {
                b.add(-1.0, &[(i, cd), (i + 1, c)]);
                b.add(-1.0, &[(i + 1, cd), (i, c)]);
            }
        }
        for i in 0..n {
            b.add(8.5, &[(i, "Nupdn")]);
        }
        let mpo = b.build().unwrap();
        // canonical Hubbard NN MPO bond dimension is 6
        assert_eq!(mpo.max_bond_dim(), 6);
    }

    #[test]
    fn mpo_matrix_matches_direct_sum_spins() {
        // materialize the MPO as a full 2^n × 2^n matrix and compare to the
        // direct Kronecker construction
        let n = 4;
        let mut b = AutoMpo::new(SpinHalf, n);
        for i in 0..n - 1 {
            b.add(1.0, &[(i, "Sz"), (i + 1, "Sz")]);
            b.add(0.5, &[(i, "S+"), (i + 1, "S-")]);
            b.add(0.5, &[(i, "S-"), (i + 1, "S+")]);
        }
        b.add(0.3, &[(1, "Sz")]);
        let mpo = b.build().unwrap();
        let dense_h = mpo.to_dense_matrix().unwrap();
        let reference = crate::mpo::dense_from_terms(&SpinHalf, n, &b.expanded().unwrap());
        assert!(dense_h.allclose(&reference, 1e-10));
    }

    #[test]
    fn mpo_matrix_matches_direct_sum_hubbard() {
        let n = 3;
        let mut b = AutoMpo::new(Electron, n);
        for i in 0..n - 1 {
            for (cd, c) in [("Cdagup", "Cup"), ("Cdagdn", "Cdn")] {
                b.add(-1.0, &[(i, cd), (i + 1, c)]);
                b.add(-1.0, &[(i + 1, cd), (i, c)]);
            }
        }
        for i in 0..n {
            b.add(4.0, &[(i, "Nupdn")]);
        }
        let mpo = b.build().unwrap();
        let dense_h = mpo.to_dense_matrix().unwrap();
        let reference = crate::mpo::dense_from_terms(&Electron, n, &b.expanded().unwrap());
        assert!(dense_h.allclose(&reference, 1e-10));
    }

    #[test]
    fn long_range_fermion_term_with_string() {
        // c†_0 c_3 hopping across two string sites: MPO == dense reference
        let n = 4;
        let mut b = AutoMpo::new(Electron, n);
        b.add(-1.3, &[(0, "Cdagup"), (3, "Cup")]);
        b.add(-1.3, &[(3, "Cdagup"), (0, "Cup")]);
        let mpo = b.build().unwrap();
        let dense_h = mpo.to_dense_matrix().unwrap();
        let reference = crate::mpo::dense_from_terms(&Electron, n, &b.expanded().unwrap());
        assert!(dense_h.allclose(&reference, 1e-10));
        // hermiticity
        let ht = dense_h.permute(&[1, 0]).unwrap();
        assert!(dense_h.allclose(&ht, 1e-10));
    }
}

//! The two-site DMRG sweep driver (Section II-C of the paper).
//!
//! Sweeps left-to-right and back, at each bond contracting the two site
//! tensors, solving the projected eigenproblem with Davidson (Alg. 1),
//! splitting by truncated SVD (singular values below the cutoff removed,
//! bond capped at `max_m`), absorbing the singular values in the sweep
//! direction, and extending the environments. Bond dimension is grown
//! gradually over sweeps exactly as the paper does ("we gradually increase
//! bond dimension of the MPS, sweeping over all sites multiple times for
//! each successive bond dimension choice").
//!
//! Per-site wall-clock/flop records feed Figs. 5 and 6 directly.

use crate::davidson::{davidson, DavidsonOptions};
use crate::env::{extend_left, extend_right, Environments};
use crate::heff::EffectiveHam;
use crate::{Error, Result};
use std::time::Instant;
use tt_blocks::contract::contract;
use tt_blocks::{block_svd, scale_bond, Algorithm};
use tt_dist::Executor;
use tt_linalg::TruncSpec;
use tt_mps::{Mpo, Mps};

/// Parameters of one sweep (one left-to-right plus right-to-left pass).
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Bond dimension cap `m`.
    pub max_m: usize,
    /// SVD truncation cutoff (the paper uses 1e-12 at large `m`).
    pub cutoff: f64,
    /// Davidson settings for this sweep.
    pub davidson: DavidsonOptions,
    /// Noise amplitude (relative to the state norm) mixed into the two-site
    /// tensor before the SVD split. Repopulates quantum-number blocks that
    /// truncation would otherwise kill — White's density-matrix
    /// perturbation in its two-site form. Ramp it down to 0 over the
    /// schedule; frustrated systems (the triangular Hubbard benchmark)
    /// need it to escape product-state local minima.
    pub noise: f64,
}

/// A schedule of sweeps with gradually increasing bond dimension.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The sweeps to run, in order.
    pub sweeps: Vec<SweepParams>,
}

impl Schedule {
    /// Ramp the bond dimension: `n_per_m` sweeps at each entry of `ms`,
    /// with noise decaying from 1e-4 to zero across the ramp.
    pub fn ramp(ms: &[usize], n_per_m: usize, cutoff: f64) -> Self {
        let mut sweeps = Vec::new();
        let total = ms.len() * n_per_m;
        for (i, &m) in ms.iter().enumerate() {
            for k in 0..n_per_m {
                let idx = i * n_per_m + k;
                // decay noise; last quarter of the schedule runs clean
                let noise = if idx + total.div_ceil(4) >= total {
                    0.0
                } else {
                    1e-4 * 0.1f64.powi(idx as i32 / 2)
                };
                sweeps.push(SweepParams {
                    max_m: m,
                    cutoff,
                    davidson: DavidsonOptions::default(),
                    noise,
                });
            }
        }
        Schedule { sweeps }
    }
}

/// Timing/flop record of one two-site optimization.
#[derive(Debug, Clone, Copy)]
pub struct SiteRecord {
    /// Left site of the optimized pair.
    pub site: usize,
    /// Wall-clock seconds for the whole step (Davidson + SVD + env).
    pub seconds: f64,
    /// Flops counted during the step.
    pub flops: u64,
    /// Davidson matvecs.
    pub matvecs: usize,
    /// Ritz value after optimization.
    pub energy: f64,
    /// Truncation error of the SVD split.
    pub trunc_err: f64,
    /// Bond dimension kept.
    pub bond_dim: usize,
}

/// Record of one full sweep.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Energy after the sweep (last Ritz value).
    pub energy: f64,
    /// Largest truncation error seen.
    pub max_trunc_err: f64,
    /// Largest bond dimension kept.
    pub max_bond_dim: usize,
    /// Per-optimization records, in execution order.
    pub sites: Vec<SiteRecord>,
    /// Wall-clock seconds of the sweep.
    pub seconds: f64,
}

/// Result of a DMRG run.
#[derive(Debug, Clone)]
pub struct DmrgRun {
    /// Final energy estimate.
    pub energy: f64,
    /// Record per sweep.
    pub sweeps: Vec<SweepRecord>,
}

impl DmrgRun {
    /// Energy history (one entry per sweep).
    pub fn energies(&self) -> Vec<f64> {
        self.sweeps.iter().map(|s| s.energy).collect()
    }
}

/// Driver for two-site DMRG on a given executor and block algorithm.
pub struct Dmrg<'a> {
    /// Executor for all contractions/SVDs.
    pub exec: &'a Executor,
    /// Block-sparsity algorithm (paper Section IV).
    pub algo: Algorithm,
    /// The Hamiltonian.
    pub mpo: &'a Mpo,
}

impl<'a> Dmrg<'a> {
    /// Create a driver.
    pub fn new(exec: &'a Executor, algo: Algorithm, mpo: &'a Mpo) -> Self {
        Self { exec, algo, mpo }
    }

    /// Run the schedule on `mps`, which is modified in place.
    pub fn run(&self, mps: &mut Mps, schedule: &Schedule) -> Result<DmrgRun> {
        let n = mps.n_sites();
        if n != self.mpo.n_sites() {
            return Err(Error::Sweep("MPO/MPS size mismatch".into()));
        }
        if n < 2 {
            return Err(Error::Sweep("two-site DMRG needs ≥ 2 sites".into()));
        }
        mps.canonicalize(self.exec, 0)
            .map_err(|e| Error::Sweep(e.to_string()))?;
        let mut envs = Environments::initialize(self.exec, self.algo, mps, self.mpo)?;

        let mut sweeps = Vec::new();
        let mut energy = f64::NAN;
        for params in &schedule.sweeps {
            let sweep_start = Instant::now();
            let mut records = Vec::new();
            // left → right
            for j in 0..n - 1 {
                let rec = self.optimize_bond(mps, &mut envs, j, params, true)?;
                energy = rec.energy;
                records.push(rec);
            }
            // right → left
            for j in (0..n - 1).rev() {
                let rec = self.optimize_bond(mps, &mut envs, j, params, false)?;
                energy = rec.energy;
                records.push(rec);
            }
            let max_trunc = records.iter().map(|r| r.trunc_err).fold(0.0, f64::max);
            let max_bond = records.iter().map(|r| r.bond_dim).max().unwrap_or(0);
            sweeps.push(SweepRecord {
                energy,
                max_trunc_err: max_trunc,
                max_bond_dim: max_bond,
                sites: records,
                seconds: sweep_start.elapsed().as_secs_f64(),
            });
        }
        Ok(DmrgRun { energy, sweeps })
    }

    /// Optimize the pair `(j, j+1)`; `moving_right` controls where the
    /// singular values are absorbed and which environment is refreshed.
    pub fn optimize_bond(
        &self,
        mps: &mut Mps,
        envs: &mut Environments,
        j: usize,
        params: &SweepParams,
        moving_right: bool,
    ) -> Result<SiteRecord> {
        let start = Instant::now();
        let flops0 = self.exec.total_flops();

        let left = envs.left[j]
            .clone()
            .ok_or_else(|| Error::Sweep(format!("missing left env at {j}")))?;
        let right = envs.right[j + 1]
            .clone()
            .ok_or_else(|| Error::Sweep(format!("missing right env at {}", j + 1)))?;

        // two-site tensor
        let x0 = contract(
            self.exec,
            self.algo,
            "lsj,jtk->lstk",
            mps.tensor(j),
            mps.tensor(j + 1),
        )
        .map_err(|e| Error::Sweep(e.to_string()))?;

        let heff = EffectiveHam {
            exec: self.exec,
            algo: self.algo,
            left: &left,
            w1: self.mpo.tensor(j),
            w2: self.mpo.tensor(j + 1),
            right: &right,
        };
        // upload the environment/MPO operands once per local eigensolve:
        // every Davidson matvec contracts against the resident handles
        // (zero operand re-shipping on the multi-process backend), with
        // bitwise-identical numerics; dropped (released) after the solve
        let rham = heff.upload()?;
        let (dres, mut x) = davidson(|v| rham.apply(v), &x0, params.davidson)?;
        drop(rham);

        // noise injection: perturb with a random tensor over *all* allowed
        // blocks so sectors absent from x regain weight before the split
        if params.noise > 0.0 {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(params.davidson.seed ^ (j as u64) << 8);
            let mut pert =
                tt_blocks::BlockSparseTensor::random(x.indices().to_vec(), x.flux(), &mut rng);
            let pn = pert.norm();
            if pn > 0.0 {
                pert.scale_mut(params.noise * x.norm() / pn);
                x.axpy(1.0, &pert)
                    .map_err(|e| Error::Sweep(e.to_string()))?;
            }
        }

        // split and truncate
        let svd = block_svd(
            self.exec,
            &x,
            &[0, 1],
            &[2, 3],
            TruncSpec {
                max_rank: params.max_m,
                cutoff: params.cutoff,
                min_keep: 1,
            },
        )
        .map_err(|e| Error::Sweep(e.to_string()))?;

        let bond_dim = svd.s.bond_dim();
        if moving_right {
            let mut svt = svd.vt;
            scale_bond(&mut svt, 0, &svd.s, false).map_err(|e| Error::Sweep(e.to_string()))?;
            // renormalize (truncation removes weight)
            let nrm = svt.norm();
            if nrm > 0.0 {
                svt.scale_mut(1.0 / nrm);
            }
            mps.set_tensor(j, svd.u);
            mps.set_tensor(j + 1, svt);
            envs.left[j + 1] = Some(extend_left(
                self.exec,
                self.algo,
                &left,
                mps.tensor(j),
                self.mpo.tensor(j),
            )?);
        } else {
            let mut us = svd.u;
            scale_bond(&mut us, 2, &svd.s, false).map_err(|e| Error::Sweep(e.to_string()))?;
            let nrm = us.norm();
            if nrm > 0.0 {
                us.scale_mut(1.0 / nrm);
            }
            mps.set_tensor(j, us);
            mps.set_tensor(j + 1, svd.vt);
            envs.right[j] = Some(extend_right(
                self.exec,
                self.algo,
                &right,
                mps.tensor(j + 1),
                self.mpo.tensor(j + 1),
            )?);
        }

        Ok(SiteRecord {
            site: j,
            seconds: start.elapsed().as_secs_f64(),
            flops: self.exec.total_flops() - flops0,
            matvecs: dres.matvecs,
            energy: dres.lambda,
            trunc_err: svd.trunc_err,
            bond_dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ed::ground_state_energy;
    use tt_blocks::QN;
    use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

    fn solve_chain(n: usize, sweeps: usize, m: usize) -> (f64, f64) {
        let lat = Lattice::chain(n);
        let builder = heisenberg_j1j2(&lat, 1.0, 0.0);
        let mpo = builder.build().unwrap();
        let mut mps = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
        let exec = Executor::local();
        let dmrg = Dmrg::new(&exec, Algorithm::List, &mpo);
        let dav = DavidsonOptions {
            max_iter: 6,
            max_subspace: 3,
            ..Default::default()
        };
        let schedule = Schedule {
            sweeps: (0..sweeps)
                .map(|_| SweepParams {
                    max_m: m,
                    cutoff: 1e-12,
                    davidson: dav,
                    noise: 0.0,
                })
                .collect(),
        };
        let run = dmrg.run(&mut mps, &schedule).unwrap();
        let terms = builder.expanded().unwrap();
        let e_ed = ground_state_energy(&SpinHalf, n, &terms, QN::one(0)).unwrap();
        (run.energy, e_ed)
    }

    /// Self-exec worker hook for the multi-process backend test below:
    /// when this test binary is re-executed as a worker this becomes the
    /// serve loop; in a normal run it is a no-op pass.
    #[test]
    fn spawned_worker_entry() {
        tt_dist::maybe_serve();
    }

    #[cfg(unix)]
    #[test]
    fn sweep_over_multi_process_backend_is_bitwise_identical() {
        // the driver code is backend-agnostic: the same Dmrg::run over the
        // shared-nothing multi-process executor must reproduce the local
        // sequential energies bit for bit
        let lat = Lattice::chain(6);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let schedule = Schedule::ramp(&[8, 16], 1, 1e-12);
        let run = |exec: &Executor| {
            let mut mps = Mps::product_state(&SpinHalf, &neel_state(6)).unwrap();
            Dmrg::new(exec, Algorithm::List, &mpo)
                .run(&mut mps, &schedule)
                .unwrap()
        };
        let local = run(&Executor::local());
        let mp_exec = Executor::multi_process(
            tt_dist::Machine::local(),
            1,
            2,
            tt_dist::SpawnSpec::SelfExec(vec!["spawned_worker_entry".into()]),
        )
        .unwrap();
        let mp = run(&mp_exec);
        assert_eq!(local.energy.to_bits(), mp.energy.to_bits());
        for (a, b) in local.energies().iter().zip(mp.energies()) {
            assert_eq!(a.to_bits(), b.to_bits(), "per-sweep energies");
        }
    }

    #[test]
    fn heisenberg_chain_n4_matches_ed() {
        let (e_dmrg, e_ed) = solve_chain(4, 4, 16);
        assert!((e_dmrg - e_ed).abs() < 1e-8, "DMRG {e_dmrg} vs ED {e_ed}");
    }

    #[test]
    fn heisenberg_chain_n8_matches_ed() {
        let (e_dmrg, e_ed) = solve_chain(8, 6, 32);
        assert!((e_dmrg - e_ed).abs() < 1e-7, "DMRG {e_dmrg} vs ED {e_ed}");
    }

    #[test]
    fn energy_decreases_over_sweeps() {
        let lat = Lattice::chain(6);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mut mps = Mps::product_state(&SpinHalf, &neel_state(6)).unwrap();
        let exec = Executor::local();
        let dmrg = Dmrg::new(&exec, Algorithm::List, &mpo);
        let schedule = Schedule::ramp(&[8, 16], 2, 1e-12);
        let run = dmrg.run(&mut mps, &schedule).unwrap();
        let es = run.energies();
        for w in es.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "energy must not increase: {es:?}");
        }
    }

    #[test]
    fn truncation_error_reported() {
        let lat = Lattice::chain(8);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mut mps = Mps::product_state(&SpinHalf, &neel_state(8)).unwrap();
        let exec = Executor::local();
        let dmrg = Dmrg::new(&exec, Algorithm::List, &mpo);
        // tight cap forces truncation
        let schedule = Schedule::ramp(&[4], 3, 1e-12);
        let run = dmrg.run(&mut mps, &schedule).unwrap();
        let last = run.sweeps.last().unwrap();
        assert!(last.max_bond_dim <= 4);
        assert!(last.max_trunc_err > 0.0, "m=4 must truncate on N=8");
    }

    #[test]
    fn records_are_complete() {
        let lat = Lattice::chain(5);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mut mps = Mps::product_state(&SpinHalf, &neel_state(5)).unwrap();
        let exec = Executor::local();
        let dmrg = Dmrg::new(&exec, Algorithm::List, &mpo);
        let schedule = Schedule::ramp(&[8], 1, 1e-12);
        let run = dmrg.run(&mut mps, &schedule).unwrap();
        let rec = &run.sweeps[0];
        // (n-1) optimizations each direction
        assert_eq!(rec.sites.len(), 2 * 4);
        assert!(rec.sites.iter().all(|s| s.flops > 0));
        assert!(rec.seconds > 0.0);
    }

    #[test]
    fn preserves_quantum_number() {
        let lat = Lattice::chain(6);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mut mps = Mps::product_state(&SpinHalf, &neel_state(6)).unwrap();
        let exec = Executor::local();
        let dmrg = Dmrg::new(&exec, Algorithm::List, &mpo);
        let schedule = Schedule::ramp(&[16], 2, 1e-12);
        dmrg.run(&mut mps, &schedule).unwrap();
        assert!(mps.total_qn().is_zero(), "Sz must stay 0");
        assert!((mps.norm() - 1.0).abs() < 1e-8);
    }
}

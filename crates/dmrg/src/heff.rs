//! The two-site effective Hamiltonian.
//!
//! Fig. 1d of the paper: the projected operator `K` is never formed; each
//! Davidson matrix-vector product applies the left environment, the two
//! MPO site tensors and the right environment to the two-site tensor in a
//! four-contraction chain of overall cost `O(m³kd)`. Every contraction is
//! dispatched through the chosen block-sparsity algorithm, with the
//! structural operand (environment or MPO tensor) first — the operand the
//! *sparse-dense* algorithm keeps sparse while Davidson intermediates stay
//! dense, exactly as Section IV-A prescribes.

use crate::{Error, Result};
use tt_blocks::contract::{chain_apply, contract, free_operand, upload_operand};
use tt_blocks::{Algorithm, BlockSparseTensor, ResidentOperand};
use tt_dist::Executor;

/// The implicit two-site effective Hamiltonian `K`.
pub struct EffectiveHam<'a> {
    /// Executor for all contractions.
    pub exec: &'a Executor,
    /// Block-sparsity algorithm.
    pub algo: Algorithm,
    /// Left environment `(b In, k Out, c Out)`.
    pub left: &'a BlockSparseTensor,
    /// MPO tensor of the first site.
    pub w1: &'a BlockSparseTensor,
    /// MPO tensor of the second site.
    pub w2: &'a BlockSparseTensor,
    /// Right environment `(b Out, k In, c In)`.
    pub right: &'a BlockSparseTensor,
}

impl EffectiveHam<'_> {
    /// Apply `K` to a two-site tensor `x(jl In, σ₁ In, σ₂ In, jr Out)`.
    pub fn apply(&self, x: &BlockSparseTensor) -> Result<BlockSparseTensor> {
        // t1(b,k,q,w,f) = L(b,k,c) · x(c,q,w,f)
        let t1 = contract(self.exec, self.algo, "bkc,cqwf->bkqwf", self.left, x).map_err(wrap)?;
        // t2(b,p,g,w,f) = W1(k,p,q,g) · t1
        let t2 = contract(self.exec, self.algo, "kpqg,bkqwf->bpgwf", self.w1, &t1).map_err(wrap)?;
        // t3(b,p,s,h,f) = W2(g,s,w,h) · t2
        let t3 = contract(self.exec, self.algo, "gswh,bpgwf->bpshf", self.w2, &t2).map_err(wrap)?;
        // y(b,p,s,r) = R(r,h,f) · t3
        contract(self.exec, self.algo, "rhf,bpshf->bpsr", self.right, &t3).map_err(wrap)
    }

    /// Rayleigh quotient `⟨x|K|x⟩ / ⟨x|x⟩`.
    pub fn expectation(&self, x: &BlockSparseTensor) -> Result<f64> {
        let kx = self.apply(x)?;
        let num = x.dot(&kx).map_err(wrap)?;
        let den = x.dot(x).map_err(wrap)?;
        Ok(num / den)
    }

    /// Flops of one `apply` under the classical algorithm, from the
    /// executor's counter (useful for rate measurements).
    pub fn flops_of_apply(&self, x: &BlockSparseTensor) -> Result<u64> {
        let before = self.exec.total_flops();
        let _ = self.apply(x)?;
        Ok(self.exec.total_flops() - before)
    }

    /// Upload the four structural operands (L, W₁, W₂, R) onto the
    /// executor and return a [`ResidentHam`] whose matvecs run against
    /// the resident buffers: after the first `apply`, repeated Davidson
    /// matvecs ship zero bytes for the environment/MPO operands on the
    /// multi-process backend. Numerics are bitwise-identical to
    /// [`EffectiveHam::apply`].
    pub fn upload(&self) -> Result<ResidentHam<'_>> {
        Ok(ResidentHam {
            exec: self.exec,
            algo: self.algo,
            left: upload_operand(self.exec, self.algo, self.left),
            w1: upload_operand(self.exec, self.algo, self.w1),
            w2: upload_operand(self.exec, self.algo, self.w2),
            right: upload_operand(self.exec, self.algo, self.right),
        })
    }
}

/// A two-site effective Hamiltonian whose structural operands are
/// *resident* on the runtime (the paper's operand-residency discipline:
/// the environments and MPO tensors of one local eigensolve stay put,
/// only the Davidson vector and its intermediates move). Created by
/// [`EffectiveHam::upload`]; the resident buffers are released on drop.
pub struct ResidentHam<'a> {
    exec: &'a Executor,
    algo: Algorithm,
    left: ResidentOperand,
    w1: ResidentOperand,
    w2: ResidentOperand,
    right: ResidentOperand,
}

impl ResidentHam<'_> {
    /// Apply `K` to a two-site tensor — bitwise-identical to
    /// [`EffectiveHam::apply`] on the same operands, but run as **one
    /// chained superstep per matvec**: ψ's blocks upload once, the
    /// intermediates t₁…t₃ stay resident in the worker stores (no
    /// per-contraction round-trip through the driver), and only `y`'s
    /// blocks download. On the multi-process backend this collapses the
    /// driver's per-matvec *result* traffic to the final download.
    pub fn apply(&self, x: &BlockSparseTensor) -> Result<BlockSparseTensor> {
        chain_apply(
            self.exec,
            self.algo,
            &[
                ("bkc,cqwf->bkqwf", &self.left),
                ("kpqg,bkqwf->bpgwf", &self.w1),
                ("gswh,bpgwf->bpshf", &self.w2),
                ("rhf,bpshf->bpsr", &self.right),
            ],
            x,
        )
        .map_err(wrap)
    }
}

impl Drop for ResidentHam<'_> {
    fn drop(&mut self) {
        // release the resident buffers; a transport failure here cannot
        // be surfaced from drop and the worker store self-bounds anyway
        for op in [&self.left, &self.w1, &self.w2, &self.right] {
            let _ = free_operand(self.exec, op);
        }
    }
}

fn wrap(e: tt_blocks::Error) -> Error {
    Error::Eig(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environments;
    use tt_blocks::contract::contract_list;
    use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

    /// The effective Hamiltonian on the (0,1) window of a product state
    /// must reproduce ⟨ψ|H|ψ⟩ as a Rayleigh quotient.
    #[test]
    fn rayleigh_quotient_matches_expectation() {
        let n = 4;
        let lat = Lattice::chain(n);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mps = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
        let exec = Executor::local();
        let envs = Environments::initialize(&exec, Algorithm::List, &mps, &mpo).unwrap();
        let x = contract_list(&exec, "lsj,jtk->lstk", mps.tensor(0), mps.tensor(1)).unwrap();
        let heff = EffectiveHam {
            exec: &exec,
            algo: Algorithm::List,
            left: envs.left[0].as_ref().unwrap(),
            w1: mpo.tensor(0),
            w2: mpo.tensor(1),
            right: envs.right[1].as_ref().unwrap(),
        };
        let rq = heff.expectation(&x).unwrap();
        let e = mps.expectation(&mpo).unwrap();
        assert!((rq - e).abs() < 1e-10, "{rq} vs {e}");
    }

    /// K must be symmetric: ⟨y|K x⟩ == ⟨K y|x⟩.
    #[test]
    fn effective_ham_symmetric() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 4;
        let lat = Lattice::chain(n);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mps = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
        let exec = Executor::local();
        let envs = Environments::initialize(&exec, Algorithm::List, &mps, &mpo).unwrap();
        let x0 = contract_list(&exec, "lsj,jtk->lstk", mps.tensor(0), mps.tensor(1)).unwrap();
        let heff = EffectiveHam {
            exec: &exec,
            algo: Algorithm::List,
            left: envs.left[0].as_ref().unwrap(),
            w1: mpo.tensor(0),
            w2: mpo.tensor(1),
            right: envs.right[1].as_ref().unwrap(),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let x = tt_blocks::BlockSparseTensor::random(x0.indices().to_vec(), x0.flux(), &mut rng);
        let y = tt_blocks::BlockSparseTensor::random(x0.indices().to_vec(), x0.flux(), &mut rng);
        let kx = heff.apply(&x).unwrap();
        let ky = heff.apply(&y).unwrap();
        let a = y.dot(&kx).unwrap();
        let b = ky.dot(&x).unwrap();
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    /// All three algorithms produce the same matvec.
    #[test]
    fn algorithms_agree_on_matvec() {
        let n = 4;
        let lat = Lattice::chain(n);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mps = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
        let exec = Executor::local();
        let envs = Environments::initialize(&exec, Algorithm::List, &mps, &mpo).unwrap();
        let x = contract_list(&exec, "lsj,jtk->lstk", mps.tensor(0), mps.tensor(1)).unwrap();
        let mut results = Vec::new();
        for algo in [
            Algorithm::List,
            Algorithm::SparseDense,
            Algorithm::SparseSparse,
        ] {
            let heff = EffectiveHam {
                exec: &exec,
                algo,
                left: envs.left[0].as_ref().unwrap(),
                w1: mpo.tensor(0),
                w2: mpo.tensor(1),
                right: envs.right[1].as_ref().unwrap(),
            };
            results.push(heff.apply(&x).unwrap().to_dense());
        }
        assert!(results[1].allclose(&results[0], 1e-10));
        assert!(results[2].allclose(&results[0], 1e-10));
    }
}

//! `tt-dist-serve` — the multi-tenant solve daemon.
//!
//! Spawns one worker fleet, binds a Unix-domain socket and serves
//! concurrent DMRG / contraction-chain jobs until a client sends
//! `Shutdown` (or the process is signalled). Workers are re-execs of this
//! same binary ([`SpawnSpec::SelfExec`]), so the daemon is self-contained.
//!
//! ```text
//! tt-dist-serve [--socket PATH] [--workers P] [--nodes N]
//!               [--concurrent J] [--queue Q] [--retention-mb MB]
//! ```

fn main() {
    #[cfg(unix)]
    run();
    #[cfg(not(unix))]
    {
        eprintln!("tt-dist-serve requires a unix platform");
        std::process::exit(1);
    }
}

#[cfg(unix)]
fn run() {
    // when re-executed as a fleet worker, serve kernels and exit
    tt_dist::maybe_serve();

    use dmrg::DmrgSolveRunner;
    use std::sync::Arc;
    use tt_dist::service::{Service, ServiceConfig};
    use tt_dist::SpawnSpec;

    let mut socket = std::env::temp_dir().join("tt-dist-serve.sock");
    let mut workers = 3usize;
    let mut nodes = 1usize;
    let mut concurrent = 2usize;
    let mut queue = 16usize;
    let mut retention_mb = 256u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("tt-dist-serve: {what} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--socket" => socket = value("--socket").into(),
            "--workers" => workers = parse(&value("--workers"), "--workers"),
            "--nodes" => nodes = parse(&value("--nodes"), "--nodes"),
            "--concurrent" => concurrent = parse(&value("--concurrent"), "--concurrent"),
            "--queue" => queue = parse(&value("--queue"), "--queue"),
            "--retention-mb" => retention_mb = parse(&value("--retention-mb"), "--retention-mb"),
            "--help" | "-h" => {
                println!(
                    "tt-dist-serve [--socket PATH] [--workers P] [--nodes N] \
                     [--concurrent J] [--queue Q] [--retention-mb MB]"
                );
                return;
            }
            other => {
                eprintln!("tt-dist-serve: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = ServiceConfig::new(&socket, workers);
    cfg.nodes = nodes;
    cfg.max_concurrent = concurrent;
    cfg.max_queued = queue;
    cfg.retention_bytes = retention_mb << 20;
    cfg.spawn = SpawnSpec::SelfExec(vec![]);

    let service = match Service::start(cfg, Some(Arc::new(DmrgSolveRunner))) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tt-dist-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "tt-dist-serve: listening on {} ({workers} workers, {concurrent} concurrent jobs)",
        socket.display()
    );
    service.wait();
    eprintln!("tt-dist-serve: shut down");
}

#[cfg(unix)]
fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("tt-dist-serve: bad value {s:?} for {what}");
        std::process::exit(2);
    })
}

//! Observables on optimized states.

use crate::{Error, Result};
use tt_mps::{AutoMpo, Mps, SiteType};

/// `⟨Op_i⟩` for a named single-site operator.
pub fn site_expectation<S: SiteType>(
    mps: &Mps,
    site_type: &S,
    site: usize,
    op: &str,
) -> Result<f64> {
    let n = mps.n_sites();
    if site >= n {
        return Err(Error::Sweep(format!("site {site} out of range")));
    }
    let mut b = AutoMpo::new(site_type.clone(), n);
    b.add(1.0, &[(site, op)]);
    let mpo = b.build().map_err(|e| Error::Sweep(e.to_string()))?;
    mps.expectation(&mpo)
        .map_err(|e| Error::Sweep(e.to_string()))
}

/// Two-point correlation `⟨Op_i Op_j⟩` of named operators.
pub fn correlation<S: SiteType>(
    mps: &Mps,
    site_type: &S,
    i: usize,
    op_i: &str,
    j: usize,
    op_j: &str,
) -> Result<f64> {
    let n = mps.n_sites();
    if i >= n || j >= n || i == j {
        return Err(Error::Sweep(
            "correlation needs distinct in-range sites".into(),
        ));
    }
    let mut b = AutoMpo::new(site_type.clone(), n);
    b.add(1.0, &[(i, op_i), (j, op_j)]);
    let mpo = b.build().map_err(|e| Error::Sweep(e.to_string()))?;
    mps.expectation(&mpo)
        .map_err(|e| Error::Sweep(e.to_string()))
}

/// Static spin structure factor
/// `S(q) = (1/N) Σ_{ij} e^{i q·(r_i − r_j)} ⟨Sz_i Sz_j⟩`
/// on a lattice — the diagnostic the `J1−J2` literature uses to identify
/// magnetic order (Néel order peaks at `q = (π, π)`).
pub fn structure_factor<S: SiteType>(
    mps: &Mps,
    site_type: &S,
    lattice: &tt_mps::Lattice,
    op: &str,
    q: (f64, f64),
) -> Result<f64> {
    let n = lattice.n_sites();
    if mps.n_sites() != n {
        return Err(Error::Sweep("lattice/MPS size mismatch".into()));
    }
    // ⟨Op_i Op_j⟩ for all pairs (diagonal term uses Op_i²  = ⟨Op Op⟩ on site)
    let mut total = 0.0;
    for i in 0..n {
        let (xi, yi) = lattice.coords(i);
        for j in 0..n {
            let (xj, yj) = lattice.coords(j);
            let phase = q.0 * (xi as f64 - xj as f64) + q.1 * (yi as f64 - yj as f64);
            let cij = if i == j {
                // on-site ⟨Op²⟩ via a two-factor same-site term
                let mut b = AutoMpo::new(site_type.clone(), n);
                b.add(1.0, &[(i, op), (i, op)]);
                let mpo = b.build().map_err(|e| Error::Sweep(e.to_string()))?;
                mps.expectation(&mpo)
                    .map_err(|e| Error::Sweep(e.to_string()))?
            } else {
                correlation(mps, site_type, i, op, j, op)?
            };
            total += phase.cos() * cij;
        }
    }
    Ok(total / n as f64)
}

/// Sum of `⟨Op_i⟩` over all sites (e.g. total Sz or total N).
pub fn total_expectation<S: SiteType>(mps: &Mps, site_type: &S, op: &str) -> Result<f64> {
    let n = mps.n_sites();
    let mut b = AutoMpo::new(site_type.clone(), n);
    for i in 0..n {
        b.add(1.0, &[(i, op)]);
    }
    let mpo = b.build().map_err(|e| Error::Sweep(e.to_string()))?;
    mps.expectation(&mpo)
        .map_err(|e| Error::Sweep(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_mps::{Electron, SpinHalf};

    #[test]
    fn neel_magnetization() {
        let psi = Mps::product_state(&SpinHalf, &[0, 1, 0, 1]).unwrap();
        assert!((site_expectation(&psi, &SpinHalf, 0, "Sz").unwrap() - 0.5).abs() < 1e-12);
        assert!((site_expectation(&psi, &SpinHalf, 1, "Sz").unwrap() + 0.5).abs() < 1e-12);
        assert!(total_expectation(&psi, &SpinHalf, "Sz").unwrap().abs() < 1e-12);
    }

    #[test]
    fn neel_zz_correlation() {
        let psi = Mps::product_state(&SpinHalf, &[0, 1, 0, 1]).unwrap();
        let c = correlation(&psi, &SpinHalf, 0, "Sz", 1, "Sz").unwrap();
        assert!((c + 0.25).abs() < 1e-12);
        let c2 = correlation(&psi, &SpinHalf, 0, "Sz", 2, "Sz").unwrap();
        assert!((c2 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn electron_counts() {
        let psi = Mps::product_state(&Electron, &[1, 2, 3, 0]).unwrap();
        assert!((total_expectation(&psi, &Electron, "Nup").unwrap() - 2.0).abs() < 1e-12);
        assert!((total_expectation(&psi, &Electron, "Ndn").unwrap() - 2.0).abs() < 1e-12);
        assert!((site_expectation(&psi, &Electron, 2, "Nupdn").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_sites_rejected() {
        let psi = Mps::product_state(&SpinHalf, &[0, 1]).unwrap();
        assert!(site_expectation(&psi, &SpinHalf, 5, "Sz").is_err());
        assert!(correlation(&psi, &SpinHalf, 0, "Sz", 0, "Sz").is_err());
    }

    #[test]
    fn neel_structure_factor_peaks_at_pi_pi() {
        use tt_mps::Lattice;
        let lat = Lattice::square_cylinder(2, 2);
        // checkerboard: spin set by (x + y) parity (true 2-D Néel order)
        let states: Vec<usize> = (0..4)
            .map(|s| {
                let (x, y) = lat.coords(s);
                (x + y) % 2
            })
            .collect();
        let psi = Mps::product_state(&SpinHalf, &states).unwrap();
        let pi = std::f64::consts::PI;
        let s_pipi = structure_factor(&psi, &SpinHalf, &lat, "Sz", (pi, pi)).unwrap();
        let s_00 = structure_factor(&psi, &SpinHalf, &lat, "Sz", (0.0, 0.0)).unwrap();
        // perfect Néel order: S(π,π) = N·(1/4)/N · N = N/4 per site ⇒ 1.0
        // for N = 4; S(0,0) = 0 in the Sz = 0 sector
        assert!((s_pipi - 1.0).abs() < 1e-10, "S(pi,pi) = {s_pipi}");
        assert!(s_00.abs() < 1e-10, "S(0,0) = {s_00}");
    }

    #[test]
    fn structure_factor_size_mismatch() {
        use tt_mps::Lattice;
        let lat = Lattice::square_cylinder(2, 2);
        let psi = Mps::product_state(&SpinHalf, &[0, 1]).unwrap();
        assert!(structure_factor(&psi, &SpinHalf, &lat, "Sz", (0.0, 0.0)).is_err());
    }
}

//! The DMRG side of the multi-tenant solve service: maps
//! [`tt_dist::service`] job specs onto this crate's sweep driver.
//!
//! The daemon in `tt-dist` is physics-free — it schedules jobs, installs
//! per-job cost scopes and streams events, but delegates the actual solve
//! to a [`SolveRunner`]. [`DmrgSolveRunner`] is that implementation: it
//! builds the requested Hamiltonian and initial product state, then runs
//! the bond-dimension ramp **one sweep at a time**, calling
//! [`JobCtx::checkpoint`] before each sweep (cancellation + resident-budget
//! enforcement points) and [`JobCtx::sweep_done`] after (streamed progress).
//!
//! [`run_reference`] executes the *identical* operation sequence without a
//! service context. Because the simulated runtime is bit-for-bit
//! deterministic and the service meters each job through a fresh
//! [`CostTracker`](tt_dist::CostTracker) charge book, a job's reported
//! energies and meters are bitwise-equal to `run_reference` on a fresh
//! in-process executor — the acceptance check of the multi-tenant design.

use crate::davidson::DavidsonOptions;
use crate::sweep::{Dmrg, Schedule, SweepParams};
use tt_blocks::Algorithm;
use tt_dist::service::{
    AlgoSpec, DmrgJobSpec, JobCtx, JobError, ModelSpec, SolveOutcome, SolveRunner,
};
use tt_dist::Executor;
use tt_mps::{
    electron_filling, heisenberg_j1j2, hubbard, neel_state, Electron, Lattice, Mpo, Mps, SpinHalf,
};

/// The `dmrg` crate's [`SolveRunner`]: hand an `Arc<DmrgSolveRunner>` to
/// [`tt_dist::service::Service::start`] to get a DMRG-capable daemon.
pub struct DmrgSolveRunner;

impl SolveRunner for DmrgSolveRunner {
    fn run(
        &self,
        spec: &DmrgJobSpec,
        exec: &Executor,
        ctx: &JobCtx,
    ) -> std::result::Result<SolveOutcome, JobError> {
        run_spec(spec, exec, Some(ctx))
    }
}

/// Run `spec` serially on `exec` with no service context — the bitwise
/// reference for a service job's energies and per-job meters. Use a fresh
/// in-process executor ([`Executor::local`]) so its charge book starts
/// empty, exactly like the job's scoped book.
pub fn run_reference(
    spec: &DmrgJobSpec,
    exec: &Executor,
) -> std::result::Result<SolveOutcome, JobError> {
    run_spec(spec, exec, None)
}

fn algorithm(a: AlgoSpec) -> Algorithm {
    match a {
        AlgoSpec::List => Algorithm::List,
        AlgoSpec::SparseDense => Algorithm::SparseDense,
        AlgoSpec::SparseSparse => Algorithm::SparseSparse,
    }
}

/// Build the requested Hamiltonian MPO and initial product state.
fn build_problem(spec: &DmrgJobSpec) -> std::result::Result<(Mpo, Mps), JobError> {
    let fail = |what: &str, e: &dyn std::fmt::Display| JobError::Failed(format!("{what}: {e}"));
    match spec.model {
        ModelSpec::HeisenbergChain { n, j2 } => {
            let n = n as usize;
            if n < 2 {
                return Err(JobError::Failed(format!("chain needs ≥ 2 sites, got {n}")));
            }
            let lat = Lattice::chain(n);
            let mpo = heisenberg_j1j2(&lat, 1.0, j2)
                .build()
                .map_err(|e| fail("heisenberg mpo", &e))?;
            let psi = Mps::product_state(&SpinHalf, &neel_state(n))
                .map_err(|e| fail("neel state", &e))?;
            Ok((mpo, psi))
        }
        ModelSpec::HubbardChain { n, u } => {
            let n = n as usize;
            if n < 2 {
                return Err(JobError::Failed(format!("chain needs ≥ 2 sites, got {n}")));
            }
            let lat = Lattice::chain(n);
            let mpo = hubbard(&lat, 1.0, u)
                .build()
                .map_err(|e| fail("hubbard mpo", &e))?;
            let psi = Mps::product_state(&Electron, &electron_filling(n, n / 2, n / 2))
                .map_err(|e| fail("electron filling", &e))?;
            Ok((mpo, psi))
        }
    }
}

/// The shared sweep loop: one single-sweep [`Schedule`] per (m, repeat)
/// stage so the service can checkpoint and stream between sweeps. The
/// reference path (`ctx = None`) runs the byte-identical sequence.
fn run_spec(
    spec: &DmrgJobSpec,
    exec: &Executor,
    ctx: Option<&JobCtx>,
) -> std::result::Result<SolveOutcome, JobError> {
    if spec.ms.is_empty() {
        return Err(JobError::Failed("empty bond-dimension ramp".into()));
    }
    let (mpo, mut psi) = build_problem(spec)?;
    let driver = Dmrg::new(exec, algorithm(spec.algo), &mpo);
    let davidson = DavidsonOptions {
        max_iter: spec.davidson.max_iter.max(1) as usize,
        max_subspace: spec.davidson.max_subspace.max(2) as usize,
        tol: spec.davidson.tol,
        seed: spec.davidson.seed,
    };
    let stages = spec.ms.len();
    let mut energies = Vec::new();
    let mut energy = f64::NAN;
    for (si, &m) in spec.ms.iter().enumerate() {
        // noise on every ramp stage but the last, so the final energy is
        // from clean sweeps
        let noise = if si + 1 == stages { 0.0 } else { spec.noise };
        for _ in 0..spec.sweeps_per_m.max(1) {
            if let Some(c) = ctx {
                c.checkpoint()?;
            }
            let schedule = Schedule {
                sweeps: vec![SweepParams {
                    max_m: m.max(1) as usize,
                    cutoff: spec.cutoff,
                    davidson,
                    noise,
                }],
            };
            let run = driver
                .run(&mut psi, &schedule)
                .map_err(|e| JobError::Failed(e.to_string()))?;
            energy = run.energy;
            energies.push(energy);
            let max_bond = run
                .sweeps
                .last()
                .map(|s| s.max_bond_dim as u64)
                .unwrap_or(0);
            if let Some(c) = ctx {
                c.sweep_done(energy, max_bond);
            }
        }
    }
    Ok(SolveOutcome {
        energy,
        energies,
        dense_dims: Vec::new(),
        dense_vals: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_dist::service::DavidsonSpec;

    fn small_spec() -> DmrgJobSpec {
        DmrgJobSpec {
            model: ModelSpec::HeisenbergChain { n: 6, j2: 0.0 },
            algo: AlgoSpec::List,
            ms: vec![8, 16],
            sweeps_per_m: 1,
            cutoff: 1e-10,
            noise: 0.0,
            davidson: DavidsonSpec {
                max_iter: 4,
                max_subspace: 2,
                tol: 1e-10,
                seed: 0x1234,
            },
            timeout_ms: 0,
            resident_cap_bytes: 0,
        }
    }

    #[test]
    fn reference_solves_heisenberg_chain() {
        let exec = Executor::local();
        let out = run_reference(&small_spec(), &exec).expect("solve");
        assert_eq!(out.energies.len(), 2);
        // 6-site Heisenberg chain ground state: E = -2.493577...
        assert!(
            (out.energy - (-2.493_577_383_7)).abs() < 1e-6,
            "energy {} off the ED value",
            out.energy
        );
    }

    #[test]
    fn reference_is_deterministic() {
        let a = run_reference(&small_spec(), &Executor::local()).expect("solve a");
        let b = run_reference(&small_spec(), &Executor::local()).expect("solve b");
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        let bits = |o: &SolveOutcome| o.energies.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn hubbard_chain_builds_and_solves() {
        let spec = DmrgJobSpec {
            model: ModelSpec::HubbardChain { n: 4, u: 4.0 },
            ms: vec![12],
            ..small_spec()
        };
        let exec = Executor::local();
        let out = run_reference(&spec, &exec).expect("solve");
        assert!(out.energy.is_finite());
    }

    #[test]
    fn bad_specs_are_rejected() {
        let exec = Executor::local();
        let mut s = small_spec();
        s.ms.clear();
        assert!(run_reference(&s, &exec).is_err());
        let mut s = small_spec();
        s.model = ModelSpec::HeisenbergChain { n: 1, j2: 0.0 };
        assert!(run_reference(&s, &exec).is_err());
    }
}

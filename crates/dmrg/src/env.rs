//! Left and right environment tensors.
//!
//! As in Section II-C of the paper, the projected eigenproblem at sites
//! `(j, j+1)` is represented by a left environment `A` (everything left of
//! `j`), the two MPO site tensors, and a right environment `B` (everything
//! right of `j+1`); both environments are order-3 tensors of size `m²k`.
//! Environments extend site by site as the sweep moves, each extension a
//! three-contraction chain dispatched through the chosen block-sparsity
//! algorithm.

use crate::{Error, Result};
use tt_blocks::contract::contract;
use tt_blocks::{Algorithm, Arrow, BlockSparseTensor, QnIndex, QN};
use tt_dist::Executor;
use tt_mps::{Mpo, Mps};
use tt_tensor::DenseTensor;

/// Left edge environment: unit bonds, indices
/// `(bra-bond In, mpo-bond Out, ket-bond Out)`.
pub fn left_edge(mps: &Mps, mpo: &Mpo) -> Result<BlockSparseTensor> {
    let ket_il = mps.tensor(0).indices()[0].clone(); // In
    let mpo_kl = mpo.tensor(0).indices()[0].clone(); // In
    let arity = ket_il.qn(0).n_charges();
    // bra il = dual of ket il (Out after conj) → edge index In with the
    // same sectors
    let b = QnIndex::new(Arrow::In, ket_il.sectors().to_vec());
    let k = QnIndex::new(Arrow::Out, mpo_kl.sectors().to_vec());
    let c = QnIndex::new(Arrow::Out, ket_il.sectors().to_vec());
    let mut e = BlockSparseTensor::new(vec![b, k, c], QN::zero(arity));
    let mut block = DenseTensor::zeros([1, 1, 1]);
    block.set(&[0, 0, 0], 1.0);
    e.insert_block(vec![0, 0, 0], block)
        .map_err(|er| Error::Env(er.to_string()))?;
    Ok(e)
}

/// Right edge environment: indices
/// `(bra-bond Out, mpo-bond In, ket-bond In)`; the bra/ket boundary bonds
/// carry the state's total charge.
pub fn right_edge(mps: &Mps, mpo: &Mpo) -> Result<BlockSparseTensor> {
    let n = mps.n_sites();
    let ket_ir = mps.tensor(n - 1).indices()[2].clone(); // Out
    let mpo_kr = mpo.tensor(n - 1).indices()[3].clone(); // Out
    let arity = ket_ir.qn(0).n_charges();
    let b = QnIndex::new(Arrow::Out, ket_ir.sectors().to_vec());
    let k = QnIndex::new(Arrow::In, mpo_kr.sectors().to_vec());
    let c = QnIndex::new(Arrow::In, ket_ir.sectors().to_vec());
    let mut e = BlockSparseTensor::new(vec![b, k, c], QN::zero(arity));
    let mut block = DenseTensor::zeros([1, 1, 1]);
    block.set(&[0, 0, 0], 1.0);
    e.insert_block(vec![0, 0, 0], block)
        .map_err(|er| Error::Env(er.to_string()))?;
    Ok(e)
}

/// Extend a left environment over site `j`:
/// `L' = L ∘ ket_j ∘ W_j ∘ bra_j` (indices `(In, Out, Out)` preserved).
pub fn extend_left(
    exec: &Executor,
    algo: Algorithm,
    l: &BlockSparseTensor,
    ket: &BlockSparseTensor,
    w: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let bra = ket.conj();
    // t1(b,k,q,f) = L(b,k,c) · ket(c,q,f)
    let t1 = contract(exec, algo, "bkc,cqf->bkqf", l, ket).map_err(wrap)?;
    // t2(b,p,f,g) = W(k,p,q,g) · t1(b,k,q,f)
    let t2 = contract(exec, algo, "kpqg,bkqf->bpfg", w, &t1).map_err(wrap)?;
    // L'(h,g,f) = bra(b,p,h) · t2(b,p,f,g)
    contract(exec, algo, "bph,bpfg->hgf", &bra, &t2).map_err(wrap)
}

/// Extend a right environment over site `j`:
/// `R' = R ∘ ket_j ∘ W_j ∘ bra_j` (indices `(Out, In, In)` preserved).
pub fn extend_right(
    exec: &Executor,
    algo: Algorithm,
    r: &BlockSparseTensor,
    ket: &BlockSparseTensor,
    w: &BlockSparseTensor,
) -> Result<BlockSparseTensor> {
    let bra = ket.conj();
    // t1(b,k,c,q) = R(b,k,f) · ket(c,q,f)
    let t1 = contract(exec, algo, "bkf,cqf->bkcq", r, ket).map_err(wrap)?;
    // t2(b,p,g,c) = W(g,p,q,k) · t1(b,k,c,q)
    let t2 = contract(exec, algo, "gpqk,bkcq->bpgc", w, &t1).map_err(wrap)?;
    // R'(h,g,c) = bra(h,p,b) · t2(b,p,g,c)
    contract(exec, algo, "hpb,bpgc->hgc", &bra, &t2).map_err(wrap)
}

/// Environment cache for a sweep: `left[j]` absorbs sites `< j`,
/// `right[j]` absorbs sites `> j`.
pub struct Environments {
    /// Left environments, indexed by site.
    pub left: Vec<Option<BlockSparseTensor>>,
    /// Right environments, indexed by site.
    pub right: Vec<Option<BlockSparseTensor>>,
}

impl Environments {
    /// Initialize for a two-site sweep starting at sites `(0, 1)`: builds
    /// `left[0]` and all `right[j]` for `j ≥ 1`.
    pub fn initialize(exec: &Executor, algo: Algorithm, mps: &Mps, mpo: &Mpo) -> Result<Self> {
        let n = mps.n_sites();
        if mpo.n_sites() != n {
            return Err(Error::Env(format!(
                "MPO has {} sites but MPS has {n}",
                mpo.n_sites()
            )));
        }
        let mut left: Vec<Option<BlockSparseTensor>> = vec![None; n];
        let mut right: Vec<Option<BlockSparseTensor>> = vec![None; n];
        left[0] = Some(left_edge(mps, mpo)?);
        let mut r = right_edge(mps, mpo)?;
        right[n - 1] = Some(r.clone());
        for j in (2..n).rev() {
            r = extend_right(exec, algo, &r, mps.tensor(j), mpo.tensor(j))?;
            right[j - 1] = Some(r.clone());
        }
        Ok(Self { left, right })
    }
}

fn wrap(e: tt_blocks::Error) -> Error {
    Error::Env(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_mps::{heisenberg_j1j2, neel_state, Lattice, SpinHalf};

    fn setup(n: usize) -> (Mps, Mpo) {
        let lat = Lattice::chain(n);
        let mpo = heisenberg_j1j2(&lat, 1.0, 0.0).build().unwrap();
        let mps = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
        (mps, mpo)
    }

    #[test]
    fn edges_have_unit_blocks() {
        let (mps, mpo) = setup(4);
        let l = left_edge(&mps, &mpo).unwrap();
        assert_eq!(l.n_blocks(), 1);
        let r = right_edge(&mps, &mpo).unwrap();
        assert_eq!(r.n_blocks(), 1);
    }

    #[test]
    fn full_left_contraction_gives_energy() {
        // extending L across the whole chain and closing with the right
        // edge reproduces ⟨ψ|H|ψ⟩
        let (mps, mpo) = setup(4);
        let exec = Executor::local();
        let mut l = left_edge(&mps, &mpo).unwrap();
        for j in 0..4 {
            l = extend_left(&exec, Algorithm::List, &l, mps.tensor(j), mpo.tensor(j)).unwrap();
        }
        let r = right_edge(&mps, &mpo).unwrap();
        // close by summing the elementwise product (full contraction to a
        // scalar is outside the einsum grammar, which needs ≥1 output mode)
        let lv = l.to_dense();
        let rv = r.to_dense();
        let mut energy = 0.0;
        for i in 0..lv.dims()[0] {
            for k in 0..lv.dims()[1] {
                for c in 0..lv.dims()[2] {
                    energy += lv.at(&[i, k, c]) * rv.at(&[i, k, c]);
                }
            }
        }
        let expect = mps.expectation(&mpo).unwrap();
        assert!((energy - expect).abs() < 1e-10, "{energy} vs {expect}");
    }

    #[test]
    fn full_right_contraction_matches_left() {
        let (mps, mpo) = setup(5);
        let exec = Executor::local();
        let mut r = right_edge(&mps, &mpo).unwrap();
        for j in (0..5).rev() {
            r = extend_right(&exec, Algorithm::List, &r, mps.tensor(j), mpo.tensor(j)).unwrap();
        }
        let l = left_edge(&mps, &mpo).unwrap();
        let lv = l.to_dense();
        let rv = r.to_dense();
        let mut energy = 0.0;
        for i in 0..lv.dims()[0] {
            for k in 0..lv.dims()[1] {
                for c in 0..lv.dims()[2] {
                    energy += lv.at(&[i, k, c]) * rv.at(&[i, k, c]);
                }
            }
        }
        let expect = mps.expectation(&mpo).unwrap();
        assert!((energy - expect).abs() < 1e-10);
    }

    #[test]
    fn environments_initialize() {
        let (mps, mpo) = setup(6);
        let exec = Executor::local();
        let envs = Environments::initialize(&exec, Algorithm::List, &mps, &mpo).unwrap();
        assert!(envs.left[0].is_some());
        for j in 1..6 {
            assert!(envs.right[j].is_some(), "right[{j}]");
        }
        // env sizes: m² k with m=1 ⇒ dims (1, k, 1)
        // right[1] absorbs sites > 1, so its MPO index is the bond between
        // sites 1 and 2
        let r1 = envs.right[1].as_ref().unwrap();
        assert_eq!(r1.indices()[0].dim(), 1);
        assert_eq!(r1.indices()[1].dim(), mpo.tensor(1).indices()[3].dim());
    }

    #[test]
    fn algorithms_agree_on_extension() {
        let (mps, mpo) = setup(4);
        let exec = Executor::local();
        let l = left_edge(&mps, &mpo).unwrap();
        let l_list = extend_left(&exec, Algorithm::List, &l, mps.tensor(0), mpo.tensor(0)).unwrap();
        let l_sd = extend_left(
            &exec,
            Algorithm::SparseDense,
            &l,
            mps.tensor(0),
            mpo.tensor(0),
        )
        .unwrap();
        let l_ss = extend_left(
            &exec,
            Algorithm::SparseSparse,
            &l,
            mps.tensor(0),
            mpo.tensor(0),
        )
        .unwrap();
        assert!(l_sd.to_dense().allclose(&l_list.to_dense(), 1e-11));
        assert!(l_ss.to_dense().allclose(&l_list.to_dense(), 1e-11));
    }
}

//! `dmrg` — the paper's primary contribution: two-site DMRG over
//! (simulated-)distributed sparse and dense parallel tensor contractions.
//!
//! * [`env`] — left/right environments (size `m²k`), extended site by site,
//! * [`heff`] — the implicit two-site effective Hamiltonian of Fig. 1d,
//!   applied in `O(m³kd)` per Davidson matvec,
//! * [`davidson`] — the paper's Algorithm 1 (no preconditioning, randomized
//!   reorthogonalization fallback, small subspace),
//! * [`sweep`] — the two-site sweep driver with bond-growth schedules,
//!   truncation bookkeeping and per-site timing/flop records,
//! * [`ed`] — exact diagonalization references (generic term-based and
//!   independent bitstring Hubbard),
//! * [`service`] — the [`SolveRunner`](tt_dist::service::SolveRunner)
//!   implementation plugging this driver into the multi-tenant solve
//!   daemon (`tt-dist-serve`),
//! * [`measure`] — observables on optimized states.
//!
//! Every contraction, SVD and QR routes through a
//! [`tt_dist::Executor`] with one of the three block-sparsity
//! [`tt_blocks::Algorithm`]s, so the same driver produces the serial
//! baseline and the simulated-distributed runs of the paper's figures.

pub mod davidson;
pub mod ed;
pub mod env;
pub mod heff;
pub mod measure;
#[cfg(unix)]
pub mod service;
pub mod sweep;

pub use davidson::{davidson, DavidsonOptions, DavidsonResult};
pub use ed::{ground_state_energy, hubbard_ed, sector_basis};
pub use env::{extend_left, extend_right, left_edge, right_edge, Environments};
pub use heff::{EffectiveHam, ResidentHam};
pub use measure::{correlation, site_expectation, structure_factor, total_expectation};
#[cfg(unix)]
pub use service::{run_reference, DmrgSolveRunner};
pub use sweep::{Dmrg, DmrgRun, Schedule, SiteRecord, SweepParams, SweepRecord};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors from the DMRG driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Environment construction failed.
    Env(String),
    /// Eigensolver failed.
    Eig(String),
    /// Sweep-level failure.
    Sweep(String),
    /// Exact diagonalization failure.
    Ed(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Env(s) => write!(f, "environment: {s}"),
            Error::Eig(s) => write!(f, "eigensolver: {s}"),
            Error::Sweep(s) => write!(f, "sweep: {s}"),
            Error::Ed(s) => write!(f, "exact diagonalization: {s}"),
        }
    }
}

impl std::error::Error for Error {}

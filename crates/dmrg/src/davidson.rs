//! The Davidson eigensolver — Algorithm 1 of the paper.
//!
//! Follows the paper's implementation choices: based on the ITensor
//! routine, *without* preconditioning ("the additional memory and time cost
//! is prohibitive compared to the cost of running more sweeps"), with
//! randomization to alleviate failed reorthogonalization, and a small
//! subspace (the paper sweeps with subspace size 2, banking on the very
//! good initial guesses DMRG provides).
//!
//! The `apply` closure is called once per matrix-vector product (several
//! times per solve); the sweep driver passes
//! [`crate::heff::ResidentHam::apply`], whose environment/MPO operands
//! were uploaded once for the whole solve — the repeated matvecs here are
//! exactly the reuse window the resident-operand executor API exists for.

use crate::{Error, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tt_blocks::BlockSparseTensor;
use tt_linalg::eigh;
use tt_tensor::DenseTensor;

/// Options for [`davidson`].
#[derive(Debug, Clone, Copy)]
pub struct DavidsonOptions {
    /// Maximum matrix-vector products.
    pub max_iter: usize,
    /// Maximum subspace dimension before restarting (paper: 2 during
    /// sweeps).
    pub max_subspace: usize,
    /// Convergence threshold on the residual norm.
    pub tol: f64,
    /// Seed for the randomized reorthogonalization fallback.
    pub seed: u64,
}

impl Default for DavidsonOptions {
    fn default() -> Self {
        Self {
            max_iter: 4,
            max_subspace: 2,
            tol: 1e-10,
            seed: 0x1234,
        }
    }
}

/// Result of a Davidson solve.
#[derive(Debug, Clone)]
pub struct DavidsonResult {
    /// Smallest Ritz value.
    pub lambda: f64,
    /// Matrix-vector products performed.
    pub matvecs: usize,
    /// Final residual norm.
    pub residual: f64,
}

/// Compute the smallest eigenpair of the symmetric operator `apply`,
/// starting from `x0` (which is overwritten conceptually — the eigenvector
/// is returned).
pub fn davidson(
    mut apply: impl FnMut(&BlockSparseTensor) -> Result<BlockSparseTensor>,
    x0: &BlockSparseTensor,
    opts: DavidsonOptions,
) -> Result<(DavidsonResult, BlockSparseTensor)> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let nrm = x0.norm();
    if nrm == 0.0 {
        return Err(Error::Eig("Davidson needs a nonzero start vector".into()));
    }
    let mut v0 = x0.clone();
    v0.scale_mut(1.0 / nrm);

    let mut basis: Vec<BlockSparseTensor> = vec![v0.clone()];
    let mut av: Vec<BlockSparseTensor> = vec![apply(&v0)?];
    let mut matvecs = 1usize;
    let mut lambda = v0.dot(&av[0]).map_err(wrap)?;
    let mut x = v0;
    let mut residual = f64::INFINITY;

    for _it in 0..opts.max_iter {
        // subspace matrix M_ij = ⟨v_i | A v_j⟩ (symmetric)
        let k = basis.len();
        let mut m = DenseTensor::<f64>::zeros([k, k]);
        for (i, bi) in basis.iter().enumerate() {
            for (j, avj) in av.iter().enumerate() {
                let mij = bi.dot(avj).map_err(wrap)?;
                m.set(&[i, j], mij);
            }
        }
        // symmetrize roundoff
        let mt = m.permute(&[1, 0]).map_err(|e| Error::Eig(e.to_string()))?;
        let m = m
            .add(&mt)
            .map_err(|e| Error::Eig(e.to_string()))?
            .scaled(0.5);
        let (w, vec) = eigh(&m).map_err(|e| Error::Eig(e.to_string()))?;
        lambda = w[0];

        // Ritz vector x = Σ s_j v_j and q = Σ s_j (A v_j)
        let mut xr = basis[0].clone();
        xr.scale_mut(vec.at(&[0, 0]));
        let mut q = av[0].clone();
        q.scale_mut(vec.at(&[0, 0]));
        for j in 1..k {
            xr.axpy(vec.at(&[j, 0]), &basis[j]).map_err(wrap)?;
            q.axpy(vec.at(&[j, 0]), &av[j]).map_err(wrap)?;
        }
        // residual q = A x − λ x
        q.axpy(-lambda, &xr).map_err(wrap)?;
        residual = q.norm();
        x = xr;
        if residual <= opts.tol || matvecs >= opts.max_iter {
            break;
        }

        // orthogonalize q against the basis (modified Gram-Schmidt, twice)
        for _pass in 0..2 {
            for v in &basis {
                let c = v.dot(&q).map_err(wrap)?;
                q.axpy(-c, v).map_err(wrap)?;
            }
        }
        let qn = q.norm();
        if qn < 1e-12 {
            // failed reorthogonalization — randomize (paper's fallback)
            q = BlockSparseTensor::random(x.indices().to_vec(), x.flux(), &mut rng);
            for _pass in 0..2 {
                for v in &basis {
                    let c = v.dot(&q).map_err(wrap)?;
                    q.axpy(-c, v).map_err(wrap)?;
                }
            }
        }
        let qn = q.norm();
        if qn < 1e-14 {
            break; // space exhausted
        }
        q.scale_mut(1.0 / qn);

        if basis.len() >= opts.max_subspace {
            // thick restart: keep the Ritz vector and the new direction
            let ax = apply(&x)?;
            matvecs += 1;
            basis.clear();
            av.clear();
            let mut xn = x.clone();
            let nx = xn.norm();
            xn.scale_mut(1.0 / nx);
            basis.push(xn);
            av.push(ax);
        }
        let aq = apply(&q)?;
        matvecs += 1;
        basis.push(q);
        av.push(aq);
    }

    let nx = x.norm();
    if nx > 0.0 {
        x.scale_mut(1.0 / nx);
    }
    Ok((
        DavidsonResult {
            lambda,
            matvecs,
            residual,
        },
        x,
    ))
}

fn wrap(e: tt_blocks::Error) -> Error {
    Error::Eig(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_blocks::{Arrow, QnIndex, QN};

    /// Diagonal operator on a trivially-graded space.
    fn diag_space(n: usize) -> Vec<QnIndex> {
        vec![
            QnIndex::new(Arrow::In, vec![(QN::zero(1), n)]),
            QnIndex::new(Arrow::Out, vec![(QN::zero(1), 1)]),
        ]
    }

    fn diag_apply(x: &BlockSparseTensor) -> Result<BlockSparseTensor> {
        // A = diag(0, 1, 2, ...)
        let mut y = x.clone();
        let keys: Vec<_> = y.blocks().map(|(k, _)| k.clone()).collect();
        for key in keys {
            let b = y.block(&key).unwrap().clone();
            let n = b.dims()[0];
            let mut nb = b.clone();
            for i in 0..n {
                nb.set(&[i, 0], b.at(&[i, 0]) * i as f64);
            }
            y.insert_block(key, nb).unwrap();
        }
        Ok(y)
    }

    #[test]
    fn diagonal_ground_state() {
        let idx = diag_space(16);
        let mut rng = StdRng::seed_from_u64(3);
        let x0 = BlockSparseTensor::random(idx, QN::zero(1), &mut rng);
        let opts = DavidsonOptions {
            max_iter: 200,
            max_subspace: 8,
            tol: 1e-9,
            seed: 1,
        };
        let (res, x) = davidson(diag_apply, &x0, opts).unwrap();
        assert!(res.lambda.abs() < 1e-7, "λ = {}", res.lambda);
        // eigenvector concentrated on component 0
        let d = x.to_dense();
        assert!((d.at(&[0, 0]).abs() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn subspace_two_improves_rayleigh() {
        // with the paper's subspace size 2 and few iterations the Ritz
        // value must not exceed the initial Rayleigh quotient
        let idx = diag_space(12);
        let mut rng = StdRng::seed_from_u64(5);
        let x0 = BlockSparseTensor::random(idx, QN::zero(1), &mut rng);
        let mut x0n = x0.clone();
        x0n.scale_mut(1.0 / x0.norm());
        let before = x0n.dot(&diag_apply(&x0n).unwrap()).unwrap();
        let (res, _) = davidson(diag_apply, &x0, DavidsonOptions::default()).unwrap();
        assert!(res.lambda <= before + 1e-12);
    }

    #[test]
    fn converged_start_vector() {
        // starting exactly at the ground state: residual ≈ 0 immediately
        let mut t = BlockSparseTensor::new(diag_space(6), QN::zero(1));
        let mut b = tt_tensor::DenseTensor::zeros([6, 1]);
        b.set(&[0, 0], 1.0);
        t.insert_block(vec![0, 0], b).unwrap();
        let (res, _) = davidson(diag_apply, &t, DavidsonOptions::default()).unwrap();
        assert!(res.lambda.abs() < 1e-12);
        assert!(res.residual < 1e-10);
    }

    #[test]
    fn zero_start_rejected() {
        let t = BlockSparseTensor::new(diag_space(4), QN::zero(1));
        assert!(davidson(diag_apply, &t, DavidsonOptions::default()).is_err());
    }
}

//! Exact diagonalization — the reference that validates every DMRG energy.
//!
//! Two independent paths:
//!
//! * [`ground_state_energy`] — generic: applies the same Jordan-Wigner
//!   expanded term list the MPO is built from to a quantum-number-restricted
//!   product basis, then Lanczos. Validates MPO/DMRG machinery.
//! * [`hubbard_ed`] — model-specific: second-quantized Hubbard Hamiltonian
//!   on occupation bitstrings with explicit anticommutation sign counting.
//!   Independent of the Jordan-Wigner expansion, so it cross-checks the
//!   fermion handling itself.

use crate::{Error, Result};
use std::collections::HashMap;
use tt_blocks::QN;
use tt_linalg::{lanczos_smallest, LanczosOptions};
use tt_mps::{ExpandedTerm, SiteType};

/// Basis of product states with a fixed total quantum number.
pub struct SectorBasis {
    /// Packed site configurations (base-`d` digits), sorted.
    pub states: Vec<u64>,
    /// Inverse lookup.
    pub index: HashMap<u64, usize>,
    /// Number of sites.
    pub n: usize,
    /// Local dimension.
    pub d: usize,
}

/// Enumerate all product states of `n` sites with total charge `sector`.
pub fn sector_basis<S: SiteType>(site: &S, n: usize, sector: QN) -> SectorBasis {
    let d = site.d();
    let mut states = Vec::new();
    // iterate all d^n configurations (caller keeps n small)
    let total = (d as u64).pow(n as u32);
    for code in 0..total {
        let mut q = QN::zero(site.arity());
        let mut c = code;
        for _ in 0..n {
            q = q.add(site.state_qn((c % d as u64) as usize));
            c /= d as u64;
        }
        if q == sector {
            states.push(code);
        }
    }
    let index = states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    SectorBasis {
        states,
        index,
        n,
        d,
    }
}

impl SectorBasis {
    /// Dimension of the sector.
    pub fn dim(&self) -> usize {
        self.states.len()
    }

    /// Site state of configuration `code` at `site`.
    pub fn site_state(&self, code: u64, site: usize) -> usize {
        ((code / (self.d as u64).pow(site as u32)) % self.d as u64) as usize
    }

    /// Replace the site state, returning the new code.
    pub fn with_site_state(&self, code: u64, site: usize, s: usize) -> u64 {
        let p = (self.d as u64).pow(site as u32);
        let old = (code / p) % self.d as u64;
        code - old * p + (s as u64) * p
    }
}

/// Sparse Hamiltonian rows built from expanded terms.
pub struct SparseHam {
    /// CSR-ish: per row, list of `(col, value)`.
    pub rows: Vec<Vec<(usize, f64)>>,
}

/// Build the sector Hamiltonian from Jordan-Wigner expanded terms.
pub fn build_hamiltonian(basis: &SectorBasis, terms: &[ExpandedTerm]) -> SparseHam {
    let mut rows: Vec<HashMap<usize, f64>> = (0..basis.dim()).map(|_| HashMap::new()).collect();
    for (col_idx, &code) in basis.states.iter().enumerate() {
        for term in terms {
            // apply the factors (they act on disjoint sites)
            // enumerate output configurations recursively
            let mut partials: Vec<(u64, f64)> = vec![(code, term.coef)];
            for (s, m) in &term.factors {
                let mut next = Vec::with_capacity(partials.len());
                for &(pc, amp) in &partials {
                    let in_state = basis.site_state(pc, *s);
                    for out_state in 0..basis.d {
                        let v = m.at(&[out_state, in_state]);
                        if v != 0.0 {
                            next.push((basis.with_site_state(pc, *s, out_state), amp * v));
                        }
                    }
                }
                partials = next;
            }
            for (out_code, amp) in partials {
                if let Some(&row_idx) = basis.index.get(&out_code) {
                    *rows[row_idx].entry(col_idx).or_insert(0.0) += amp;
                }
            }
        }
    }
    SparseHam {
        rows: rows
            .into_iter()
            .map(|r| {
                let mut v: Vec<(usize, f64)> = r.into_iter().collect();
                v.sort_unstable_by_key(|e| e.0);
                v
            })
            .collect(),
    }
}

impl SparseHam {
    /// Matrix-vector product.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; x.len()];
        for (i, row) in self.rows.iter().enumerate() {
            let mut acc = 0.0;
            for &(j, v) in row {
                acc += v * x[j];
            }
            y[i] = acc;
        }
        tt_tensor::counter::add_flops(2 * self.rows.iter().map(|r| r.len() as u64).sum::<u64>());
        y
    }

    /// Max |H - Hᵀ| (symmetry check).
    pub fn asymmetry(&self) -> f64 {
        let mut max = 0.0f64;
        for (i, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                let vt = self.rows[j]
                    .iter()
                    .find(|&&(k, _)| k == i)
                    .map(|&(_, v)| v)
                    .unwrap_or(0.0);
                max = max.max((v - vt).abs());
            }
        }
        max
    }
}

/// Ground-state energy in a charge sector via Lanczos on the term-built
/// Hamiltonian.
pub fn ground_state_energy<S: SiteType>(
    site: &S,
    n: usize,
    terms: &[ExpandedTerm],
    sector: QN,
) -> Result<f64> {
    let basis = sector_basis(site, n, sector);
    if basis.dim() == 0 {
        return Err(Error::Ed("empty sector".into()));
    }
    let h = build_hamiltonian(&basis, terms);
    if basis.dim() == 1 {
        return Ok(h.rows[0].first().map(|&(_, v)| v).unwrap_or(0.0));
    }
    let x0: Vec<f64> = (0..basis.dim())
        .map(|i| 1.0 + (i as f64 * 0.7391).sin())
        .collect();
    let (e, _) = lanczos_smallest(|v| h.apply(v), &x0, LanczosOptions::default())
        .map_err(|e| Error::Ed(e.to_string()))?;
    Ok(e)
}

/// Independent Hubbard ED on occupation bitstrings (up/down masks per
/// lattice site) with explicit fermionic sign counting.
pub fn hubbard_ed(
    n_sites: usize,
    bonds: &[(usize, usize)],
    t: f64,
    u: f64,
    n_up: usize,
    n_dn: usize,
) -> Result<f64> {
    if n_sites >= 20 {
        return Err(Error::Ed("bitstring ED capped at 20 sites".into()));
    }
    let masks_with = |count: usize| -> Vec<u32> {
        (0u32..(1 << n_sites))
            .filter(|m| m.count_ones() as usize == count)
            .collect()
    };
    let ups = masks_with(n_up);
    let dns = masks_with(n_dn);
    let dim = ups.len() * dns.len();
    if dim == 0 {
        return Err(Error::Ed("empty Hubbard sector".into()));
    }
    let up_index: HashMap<u32, usize> = ups.iter().enumerate().map(|(i, &m)| (m, i)).collect();
    let dn_index: HashMap<u32, usize> = dns.iter().enumerate().map(|(i, &m)| (m, i)).collect();

    // fermionic hop: c†_a c_b on a bitmask; returns (new mask, sign)
    let hop = |mask: u32, a: usize, b: usize| -> Option<(u32, f64)> {
        if mask & (1 << b) == 0 || (a != b && mask & (1 << a) != 0) {
            return None;
        }
        let removed = mask & !(1 << b);
        // sign from electrons between the two sites
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let between = removed & (((1u32 << hi) - 1) & !((1u32 << (lo + 1)) - 1));
        let sign = if between.count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        Some((removed | (1 << a), sign))
    };

    let apply = |x: &[f64]| -> Vec<f64> {
        let mut y = vec![0.0; dim];
        for (iu, &up) in ups.iter().enumerate() {
            for (id, &dn) in dns.iter().enumerate() {
                let col = iu * dns.len() + id;
                let amp = x[col];
                if amp == 0.0 {
                    continue;
                }
                // U term
                let docc = (up & dn).count_ones() as f64;
                y[col] += u * docc * amp;
                // hopping
                for &(a, b) in bonds {
                    for (i, j) in [(a, b), (b, a)] {
                        if let Some((nu, sign)) = hop(up, i, j) {
                            let row = up_index[&nu] * dns.len() + id;
                            y[row] += -t * sign * amp;
                        }
                        if let Some((nd, sign)) = hop(dn, i, j) {
                            let row = iu * dns.len() + dn_index[&nd];
                            y[row] += -t * sign * amp;
                        }
                    }
                }
            }
        }
        y
    };

    if dim == 1 {
        let x = vec![1.0];
        return Ok(apply(&x)[0]);
    }
    let x0: Vec<f64> = (0..dim).map(|i| 1.0 + (i as f64 * 0.3717).cos()).collect();
    let (e, _) = lanczos_smallest(apply, &x0, LanczosOptions::default())
        .map_err(|e| Error::Ed(e.to_string()))?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_blocks::QN;
    use tt_mps::{heisenberg_j1j2, hubbard, Lattice, SpinHalf};

    #[test]
    fn sector_dimensions() {
        let b = sector_basis(&SpinHalf, 4, QN::one(0));
        assert_eq!(b.dim(), 6); // C(4,2)
        let b2 = sector_basis(&SpinHalf, 4, QN::one(4));
        assert_eq!(b2.dim(), 1);
        let b3 = sector_basis(&tt_mps::Electron, 2, QN::two(1, 1));
        assert_eq!(b3.dim(), 4);
    }

    #[test]
    fn two_site_heisenberg_singlet() {
        // two-spin Heisenberg: ground state is the singlet at E = −3/4
        let lat = Lattice::chain(2);
        let terms = heisenberg_j1j2(&lat, 1.0, 0.0).expanded().unwrap();
        let e = ground_state_energy(&SpinHalf, 2, &terms, QN::one(0)).unwrap();
        assert!((e + 0.75).abs() < 1e-9, "E = {e}");
    }

    #[test]
    fn heisenberg_chain_n4_exact() {
        // N=4 open Heisenberg chain: E0 = (1 - sqrt(3)) - ... known value
        // E0 = -(3/2 - ... use the analytic result E0 = (-3 + √3·? );
        // instead check against full dense diagonalization
        let lat = Lattice::chain(4);
        let terms = heisenberg_j1j2(&lat, 1.0, 0.0).expanded().unwrap();
        let e = ground_state_energy(&SpinHalf, 4, &terms, QN::one(0)).unwrap();
        // dense reference over the full space
        let h = tt_mps::dense_from_terms(&SpinHalf, 4, &terms);
        let (w, _) = tt_linalg::eigh(&h).unwrap();
        assert!((e - w[0]).abs() < 1e-8, "{e} vs {}", w[0]);
        // known value for the N=4 open chain: E0 = −(3−√3)/2·... check
        // numerically stable constant instead
        assert!((e + 1.6160254037844386).abs() < 1e-8);
    }

    #[test]
    fn hamiltonian_symmetric() {
        let lat = Lattice::square_cylinder(2, 2);
        let terms = heisenberg_j1j2(&lat, 1.0, 0.5).expanded().unwrap();
        let basis = sector_basis(&SpinHalf, 4, QN::one(0));
        let h = build_hamiltonian(&basis, &terms);
        assert!(h.asymmetry() < 1e-12);
    }

    #[test]
    fn hubbard_term_ed_matches_bitstring_ed() {
        // the key fermion-sign cross-validation: Jordan-Wigner expanded
        // term ED vs direct second-quantized bitstring ED
        let lat = Lattice::chain(4);
        let terms = hubbard(&lat, 1.0, 4.0).expanded().unwrap();
        let e_terms = ground_state_energy(&tt_mps::Electron, 4, &terms, QN::two(2, 2)).unwrap();
        let bonds: Vec<(usize, usize)> = lat.bonds_of(tt_mps::BondKind::Nearest).collect();
        let e_bits = hubbard_ed(4, &bonds, 1.0, 4.0, 2, 2).unwrap();
        assert!(
            (e_terms - e_bits).abs() < 1e-7,
            "JW terms {e_terms} vs bitstrings {e_bits}"
        );
    }

    #[test]
    fn hubbard_triangular_fermion_signs() {
        // triangular connectivity exercises longer JW strings (bonds that
        // skip sites in the 1-D ordering)
        let lat = Lattice::triangular_cylinder_xc(2, 2);
        let terms = hubbard(&lat, 1.0, 8.5).expanded().unwrap();
        let e_terms = ground_state_energy(&tt_mps::Electron, 4, &terms, QN::two(2, 2)).unwrap();
        let bonds: Vec<(usize, usize)> = lat.bonds_of(tt_mps::BondKind::Nearest).collect();
        let e_bits = hubbard_ed(4, &bonds, 1.0, 8.5, 2, 2).unwrap();
        assert!(
            (e_terms - e_bits).abs() < 1e-7,
            "JW terms {e_terms} vs bitstrings {e_bits}"
        );
    }

    #[test]
    fn atomic_limit() {
        // t=0: ground energy = 0 in the (1,1) sector of 2 sites (electrons
        // avoid double occupancy)
        let e = hubbard_ed(2, &[(0, 1)], 0.0, 8.5, 1, 1).unwrap();
        assert!(e.abs() < 1e-10);
        // forced double occupancy: 1 site, 1↑1↓ ⇒ E = U
        let e2 = hubbard_ed(1, &[], 0.0, 8.5, 1, 1).unwrap();
        assert!((e2 - 8.5).abs() < 1e-10);
    }

    #[test]
    fn hubbard_two_site_analytic() {
        // 2-site Hubbard at half filling: E0 = (U − √(U² + 16t²)) / 2
        let (t, u) = (1.0, 4.0);
        let e = hubbard_ed(2, &[(0, 1)], t, u, 1, 1).unwrap();
        let analytic = (u - (u * u + 16.0 * t * t).sqrt()) / 2.0;
        assert!((e - analytic).abs() < 1e-9, "{e} vs {analytic}");
    }
}

//! Pairwise Einstein-summation contraction, lowered to GEMM.
//!
//! CTF maps every tensor contraction onto matrix multiplication by fusing
//! free and contracted modes (the "transpose-transpose-GEMM-transpose"
//! strategy); [`einsum`] does the same. The spec grammar is the familiar
//! `"ijk,kl->ijl"`: lower- or upper-case ASCII letters label modes, labels
//! shared between the two inputs are contracted, and the output lists the
//! surviving labels in the desired order.
//!
//! Restrictions (sufficient for DMRG and enforced with errors):
//! * no label may repeat within a single operand (no internal traces),
//! * every shared label is contracted (no batched/Hadamard modes),
//! * every output label must come from exactly one input.

use crate::dense::DenseTensor;
use crate::gemm::gemm_acc_slices;
use crate::scalar::Scalar;
use crate::transpose::permute;
use crate::{Error, Result};

/// A parsed, shape-agnostic contraction plan.
///
/// Parsing a spec once and reusing the plan avoids repeated string work in
/// inner loops (the list algorithm contracts thousands of block pairs with
/// the same spec).
#[derive(Clone, Debug)]
pub struct ContractPlan {
    a_labels: Vec<u8>,
    b_labels: Vec<u8>,
    out_labels: Vec<u8>,
    /// positions of contracted labels in A and B (aligned pairwise)
    ctr_a: Vec<usize>,
    ctr_b: Vec<usize>,
    /// positions of free labels in A and B, in operand order
    free_a: Vec<usize>,
    free_b: Vec<usize>,
    /// permutation taking (free_a ++ free_b) order to out order
    out_perm: Vec<usize>,
}

impl ContractPlan {
    /// Parse a two-operand einsum spec such as `"aik,kjb->aijb"`.
    pub fn parse(spec: &str) -> Result<Self> {
        let (inputs, out) = spec
            .split_once("->")
            .ok_or_else(|| Error::BadSpec(format!("missing '->' in {spec:?}")))?;
        let (a_str, b_str) = inputs
            .split_once(',')
            .ok_or_else(|| Error::BadSpec(format!("need two operands in {spec:?}")))?;
        let a_labels: Vec<u8> = a_str.trim().bytes().collect();
        let b_labels: Vec<u8> = b_str.trim().bytes().collect();
        let out_labels: Vec<u8> = out.trim().bytes().collect();
        for &l in a_labels.iter().chain(&b_labels).chain(&out_labels) {
            if !l.is_ascii_alphabetic() {
                return Err(Error::BadSpec(format!(
                    "label {:?} is not an ASCII letter",
                    l as char
                )));
            }
        }
        let dup = |ls: &[u8]| -> bool {
            let mut seen = [false; 128];
            ls.iter()
                .any(|&l| std::mem::replace(&mut seen[l as usize], true))
        };
        if dup(&a_labels) || dup(&b_labels) || dup(&out_labels) {
            return Err(Error::BadSpec(format!(
                "repeated label within operand in {spec:?}"
            )));
        }

        let mut ctr_a = Vec::new();
        let mut ctr_b = Vec::new();
        let mut free_a = Vec::new();
        let mut free_b = Vec::new();
        for (i, &l) in a_labels.iter().enumerate() {
            if let Some(j) = b_labels.iter().position(|&m| m == l) {
                if out_labels.contains(&l) {
                    return Err(Error::BadSpec(format!(
                        "label {:?} shared by both inputs may not appear in output",
                        l as char
                    )));
                }
                ctr_a.push(i);
                ctr_b.push(j);
            } else {
                if !out_labels.contains(&l) {
                    return Err(Error::BadSpec(format!(
                        "label {:?} appears only in first operand but not in output",
                        l as char
                    )));
                }
                free_a.push(i);
            }
        }
        for (j, &l) in b_labels.iter().enumerate() {
            if !a_labels.contains(&l) {
                if !out_labels.contains(&l) {
                    return Err(Error::BadSpec(format!(
                        "label {:?} appears only in second operand but not in output",
                        l as char
                    )));
                }
                free_b.push(j);
            }
        }
        if out_labels.len() != free_a.len() + free_b.len() {
            return Err(Error::BadSpec(format!(
                "output labels of {spec:?} must be exactly the free labels"
            )));
        }

        // natural order = free_a labels then free_b labels; out_perm maps
        // output mode i -> position in natural order
        let natural: Vec<u8> = free_a
            .iter()
            .map(|&i| a_labels[i])
            .chain(free_b.iter().map(|&j| b_labels[j]))
            .collect();
        let mut out_perm = Vec::with_capacity(out_labels.len());
        for &l in &out_labels {
            let p = natural
                .iter()
                .position(|&m| m == l)
                .ok_or_else(|| Error::BadSpec(format!("output label {:?} not free", l as char)))?;
            out_perm.push(p);
        }

        Ok(Self {
            a_labels,
            b_labels,
            out_labels,
            ctr_a,
            ctr_b,
            free_a,
            free_b,
            out_perm,
        })
    }

    /// Orders expected of the two operands.
    pub fn operand_orders(&self) -> (usize, usize) {
        (self.a_labels.len(), self.b_labels.len())
    }

    /// Positions of the contracted modes in operand A (aligned pairwise with
    /// [`ContractPlan::ctr_b_positions`]).
    pub fn ctr_a_positions(&self) -> &[usize] {
        &self.ctr_a
    }

    /// Positions of the contracted modes in operand B.
    pub fn ctr_b_positions(&self) -> &[usize] {
        &self.ctr_b
    }

    /// Positions of the free (surviving) modes in operand A, operand order.
    pub fn free_a_positions(&self) -> &[usize] {
        &self.free_a
    }

    /// Positions of the free modes in operand B, operand order.
    pub fn free_b_positions(&self) -> &[usize] {
        &self.free_b
    }

    /// Permutation from the natural result order (A-free then B-free) to the
    /// requested output order.
    pub fn output_permutation(&self) -> &[usize] {
        &self.out_perm
    }

    /// Order of the result.
    pub fn output_order(&self) -> usize {
        self.out_labels.len()
    }

    /// Predict the output shape for given operand shapes (validates
    /// contracted-dimension agreement).
    pub fn output_dims(&self, a_dims: &[usize], b_dims: &[usize]) -> Result<Vec<usize>> {
        if a_dims.len() != self.a_labels.len() || b_dims.len() != self.b_labels.len() {
            return Err(Error::ShapeMismatch(format!(
                "operand orders {}/{} don't match plan {}/{}",
                a_dims.len(),
                b_dims.len(),
                self.a_labels.len(),
                self.b_labels.len()
            )));
        }
        for (&ia, &ib) in self.ctr_a.iter().zip(&self.ctr_b) {
            if a_dims[ia] != b_dims[ib] {
                return Err(Error::ShapeMismatch(format!(
                    "contracted dims {} != {} for label {:?}",
                    a_dims[ia], b_dims[ib], self.a_labels[ia] as char
                )));
            }
        }
        let natural: Vec<usize> = self
            .free_a
            .iter()
            .map(|&i| a_dims[i])
            .chain(self.free_b.iter().map(|&j| b_dims[j]))
            .collect();
        Ok(self.out_perm.iter().map(|&p| natural[p]).collect())
    }

    /// Number of flops the contraction will execute (classical algorithm).
    pub fn flop_count(&self, a_dims: &[usize], b_dims: &[usize]) -> u64 {
        let m: u64 = self.free_a.iter().map(|&i| a_dims[i] as u64).product();
        let n: u64 = self.free_b.iter().map(|&j| b_dims[j] as u64).product();
        let k: u64 = self.ctr_a.iter().map(|&i| a_dims[i] as u64).product();
        2 * m * n * k
    }

    /// Execute the contraction.
    pub fn execute<T: Scalar>(
        &self,
        a: &DenseTensor<T>,
        b: &DenseTensor<T>,
    ) -> Result<DenseTensor<T>> {
        let out_dims = self.output_dims(a.dims(), b.dims())?;

        // Fuse A to (free, ctr) and B to (ctr, free) matrices.
        let mut perm_a: Vec<usize> = self.free_a.clone();
        perm_a.extend_from_slice(&self.ctr_a);
        let mut perm_b: Vec<usize> = self.ctr_b.clone();
        perm_b.extend_from_slice(&self.free_b);

        let m: usize = self.free_a.iter().map(|&i| a.dims()[i]).product();
        let k: usize = self.ctr_a.iter().map(|&i| a.dims()[i]).product();
        let n: usize = self.free_b.iter().map(|&j| b.dims()[j]).product();

        let a_mat = permute(a, &perm_a)?;
        let b_mat = permute(b, &perm_b)?;

        let mut c = vec![T::zero(); m * n];
        gemm_acc_slices(m, k, n, a_mat.data(), b_mat.data(), &mut c);

        // natural shape = free_a dims ++ free_b dims, then permute to out order
        let natural_dims: Vec<usize> = self
            .free_a
            .iter()
            .map(|&i| a.dims()[i])
            .chain(self.free_b.iter().map(|&j| b.dims()[j]))
            .collect();
        let c = DenseTensor::from_vec(natural_dims, c)?;
        let c = permute(&c, &self.out_perm)?;
        debug_assert_eq!(c.dims(), &out_dims[..]);
        Ok(c)
    }
}

/// Contract two tensors: `einsum("ik,kj->ij", &a, &b)`.
pub fn einsum<T: Scalar>(
    spec: &str,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
) -> Result<DenseTensor<T>> {
    ContractPlan::parse(spec)?.execute(a, b)
}

/// Contract and accumulate into an existing tensor: `out += einsum(spec, a, b)`.
pub fn einsum_into<T: Scalar>(
    spec: &str,
    a: &DenseTensor<T>,
    b: &DenseTensor<T>,
    out: &mut DenseTensor<T>,
) -> Result<()> {
    let r = einsum(spec, a, b)?;
    out.axpy(T::one(), &r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_via_einsum() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseTensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = einsum("ik,kj->ij", &a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn output_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseTensor::<f64>::random([3, 4], &mut rng);
        let b = DenseTensor::<f64>::random([4, 5], &mut rng);
        let c = einsum("ik,kj->ji", &a, &b).unwrap();
        let c2 = einsum("ik,kj->ij", &a, &b).unwrap();
        assert!(c.allclose(&c2.permute(&[1, 0]).unwrap(), 1e-13));
    }

    #[test]
    fn outer_product() {
        let a = DenseTensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = DenseTensor::from_vec([3], vec![1.0, 10.0, 100.0]).unwrap();
        let c = einsum("i,j->ij", &a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.at(&[1, 2]), 200.0);
    }

    #[test]
    fn full_contraction_to_scalar() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let c = einsum("ij,ij->", &a, &a).unwrap();
        assert_eq!(c.order(), 0);
        assert_eq!(c.at(&[]), 30.0);
    }

    #[test]
    fn order3_contraction_matches_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DenseTensor::<f64>::random([2, 3, 4], &mut rng);
        let b = DenseTensor::<f64>::random([4, 3, 5], &mut rng);
        // contract j (dim 3) and k (dim 4): c[a,c'] = sum_{jk} A[a,j,k] B[k,j,c']
        let c = einsum("ajk,kjc->ac", &a, &b).unwrap();
        let mut naive = DenseTensor::<f64>::zeros([2, 5]);
        for ia in 0..2 {
            for ic in 0..5 {
                let mut s = 0.0;
                for j in 0..3 {
                    for k in 0..4 {
                        s += a.at(&[ia, j, k]) * b.at(&[k, j, ic]);
                    }
                }
                naive.set(&[ia, ic], s);
            }
        }
        assert!(c.allclose(&naive, 1e-12));
    }

    #[test]
    fn mps_style_contraction() {
        // environment update shape test: L[i,k,j], T[j,s,j2] -> X[i,k,s,j2]
        let mut rng = StdRng::seed_from_u64(3);
        let l = DenseTensor::<f64>::random([3, 2, 3], &mut rng);
        let t = DenseTensor::<f64>::random([3, 2, 4], &mut rng);
        let x = einsum("ikj,jsm->iksm", &l, &t).unwrap();
        assert_eq!(x.dims(), &[3, 2, 2, 4]);
        // spot check one element
        let mut s = 0.0;
        for j in 0..3 {
            s += l.at(&[1, 0, j]) * t.at(&[j, 1, 2]);
        }
        assert!((x.at(&[1, 0, 1, 2]) - s).abs() < 1e-12);
    }

    #[test]
    fn spec_errors() {
        let a = DenseTensor::<f64>::zeros([2, 2]);
        assert!(einsum("ij,jk", &a, &a).is_err()); // no arrow
        assert!(einsum("ii,jk->ijk", &a, &a).is_err()); // repeated label in operand
        assert!(einsum("ij,jk->ijk", &a, &a).is_err()); // contracted label in output
        assert!(einsum("ij,jk->i", &a, &a).is_err()); // free label k dropped
        assert!(einsum("ij,kl->ijkl", &a, &DenseTensor::<f64>::zeros([2])).is_err());
        // order mismatch
    }

    #[test]
    fn contracted_dim_mismatch() {
        let a = DenseTensor::<f64>::zeros([2, 3]);
        let b = DenseTensor::<f64>::zeros([4, 2]);
        assert!(einsum("ik,kj->ij", &a, &b).is_err());
    }

    #[test]
    fn plan_reuse_and_flop_count() {
        let plan = ContractPlan::parse("ik,kj->ij").unwrap();
        assert_eq!(plan.operand_orders(), (2, 2));
        assert_eq!(plan.output_order(), 2);
        assert_eq!(plan.flop_count(&[8, 4], &[4, 16]), 2 * 8 * 4 * 16);
        assert_eq!(plan.output_dims(&[8, 4], &[4, 16]).unwrap(), vec![8, 16]);
        let mut rng = StdRng::seed_from_u64(4);
        let a = DenseTensor::<f64>::random([8, 4], &mut rng);
        let b = DenseTensor::<f64>::random([4, 16], &mut rng);
        let c1 = plan.execute(&a, &b).unwrap();
        let c2 = einsum("ik,kj->ij", &a, &b).unwrap();
        assert!(c1.allclose(&c2, 0.0));
    }

    #[test]
    fn einsum_into_accumulates() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let mut out = DenseTensor::from_vec([2, 2], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        einsum_into("ik,kj->ij", &a, &a, &mut out).unwrap();
        assert_eq!(out.data(), &[2.0, 1.0, 1.0, 2.0]);
    }
}

//! Coordinate-format sparse tensors and sparse contraction kernels.
//!
//! These are the local pieces of the paper's *sparse-dense* and
//! *sparse-sparse* algorithms (Section IV-A): quantum-number block tensors
//! are flattened into one large sparse tensor, and contractions run as a
//! single sparse operation instead of a loop over block pairs. The paper
//! notes that "knowledge of quantum number labels allows for pre-computation
//! of the output sparsity, which can be provided to Cyclops to control
//! memory consumption" — [`SparseTensor::contract_sparse_masked`] implements
//! exactly that interface.

use crate::dense::DenseTensor;
use crate::einsum::ContractPlan;
use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::{Error, Result};
use std::collections::HashSet;

/// A sparse tensor storing `(linear offset, value)` pairs sorted by offset.
///
/// Offsets are row-major with respect to [`SparseTensor::shape`]. Explicit
/// zeros are permitted (they arise from cancellation) but constructors prune
/// entries below a tolerance when asked.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseTensor<T: Scalar = f64> {
    shape: Shape,
    /// Sorted, unique linear offsets.
    offsets: Vec<u64>,
    values: Vec<T>,
}

impl<T: Scalar> SparseTensor<T> {
    /// Empty sparse tensor of a given shape.
    pub fn empty(shape: impl Into<Shape>) -> Self {
        Self {
            shape: shape.into(),
            offsets: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from unsorted `(offset, value)` pairs; duplicates are summed.
    pub fn from_entries(shape: impl Into<Shape>, mut entries: Vec<(u64, T)>) -> Result<Self> {
        let shape = shape.into();
        let vol = shape.len() as u64;
        entries.sort_unstable_by_key(|e| e.0);
        let mut offsets = Vec::with_capacity(entries.len());
        let mut values: Vec<T> = Vec::with_capacity(entries.len());
        for (off, v) in entries {
            if off >= vol {
                return Err(Error::BadIndex(format!(
                    "offset {off} out of bounds for volume {vol}"
                )));
            }
            if offsets.last() == Some(&off) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                offsets.push(off);
                values.push(v);
            }
        }
        Ok(Self {
            shape,
            offsets,
            values,
        })
    }

    /// Sparsify a dense tensor, keeping entries with `|x| > tol`.
    pub fn from_dense(t: &DenseTensor<T>, tol: f64) -> Self {
        let mut offsets = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in t.data().iter().enumerate() {
            if v.abs() > tol {
                offsets.push(i as u64);
                values.push(v);
            }
        }
        Self {
            shape: t.shape().clone(),
            offsets,
            values,
        }
    }

    /// Densify.
    pub fn to_dense(&self) -> DenseTensor<T> {
        let mut out = DenseTensor::zeros(self.shape.clone());
        let data = out.data_mut();
        for (&off, &v) in self.offsets.iter().zip(&self.values) {
            data[off as usize] += v;
        }
        out
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.offsets.len()
    }

    /// Fraction of stored entries relative to the dense volume
    /// (the quantity plotted in the paper's Fig. 2b).
    pub fn sparsity(&self) -> f64 {
        if self.shape.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.shape.len() as f64
        }
    }

    /// Stored `(offset, value)` pairs, sorted by offset.
    pub fn entries(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        self.offsets
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value at a multi-index (zero when absent).
    pub fn at(&self, idx: &[usize]) -> T {
        let off = self.shape.offset(idx).expect("index in bounds") as u64;
        match self.offsets.binary_search(&off) {
            Ok(i) => self.values[i],
            Err(_) => T::zero(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs2()).sum::<f64>().sqrt()
    }

    /// In-place scale.
    pub fn scale_mut(&mut self, s: T) {
        for v in &mut self.values {
            *v *= s;
        }
    }

    /// Sparse sum `self + alpha * other` (union of patterns).
    pub fn axpy(&self, alpha: T, other: &Self) -> Result<Self> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch(format!(
                "sparse axpy {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        let mut entries: Vec<(u64, T)> = self.entries().collect();
        entries.extend(other.entries().map(|(o, v)| (o, alpha * v)));
        crate::counter::add_flops(2 * other.nnz() as u64);
        Self::from_entries(self.shape.clone(), entries)
    }

    /// Drop stored entries with `|x| <= tol`.
    pub fn prune(&mut self, tol: f64) {
        let mut keep_off = Vec::with_capacity(self.offsets.len());
        let mut keep_val = Vec::with_capacity(self.values.len());
        for (&o, &v) in self.offsets.iter().zip(&self.values) {
            if v.abs() > tol {
                keep_off.push(o);
                keep_val.push(v);
            }
        }
        self.offsets = keep_off;
        self.values = keep_val;
    }

    /// Permute modes (relabels coordinates; no dense buffer is formed).
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        let out_shape = self.shape.permuted(perm)?;
        let mut entries = Vec::with_capacity(self.nnz());
        for (off, v) in self.entries() {
            let idx = self.shape.unoffset(off as usize);
            let out_idx: Vec<usize> = perm.iter().map(|&p| idx[p]).collect();
            entries.push((out_shape.offset(&out_idx)? as u64, v));
        }
        Self::from_entries(out_shape, entries)
    }

    /// Split each entry's multi-index into a fused `(row, col)` pair given
    /// row-mode and col-mode position lists.
    fn to_matrix_coords(&self, row_modes: &[usize], col_modes: &[usize]) -> Vec<(u64, u64, T)> {
        let dims = self.shape.dims();
        let mut out = Vec::with_capacity(self.nnz());
        for (off, v) in self.entries() {
            let idx = self.shape.unoffset(off as usize);
            let mut row = 0u64;
            for &m in row_modes {
                row = row * dims[m] as u64 + idx[m] as u64;
            }
            let mut col = 0u64;
            for &m in col_modes {
                col = col * dims[m] as u64 + idx[m] as u64;
            }
            out.push((row, col, v));
        }
        out
    }

    /// Sparse × dense contraction producing a dense tensor.
    ///
    /// `spec` follows [`crate::einsum`] grammar with `self` as the first
    /// operand. This is the kernel under the *sparse-dense* algorithm.
    pub fn contract_dense(&self, spec: &str, b: &DenseTensor<T>) -> Result<DenseTensor<T>> {
        let plan = ContractPlan::parse(spec)?;
        let out_dims = plan.output_dims(self.dims(), b.dims())?;

        // B fused to (ctr, free) dense matrix, ctr modes aligned with A's.
        let mut perm_b: Vec<usize> = plan.ctr_b_positions().to_vec();
        perm_b.extend_from_slice(plan.free_b_positions());
        let k: usize = plan
            .ctr_b_positions()
            .iter()
            .map(|&m| b.dims()[m])
            .product();
        let n: usize = plan
            .free_b_positions()
            .iter()
            .map(|&m| b.dims()[m])
            .product();
        let b_mat = crate::transpose::permute(b, &perm_b)?;
        let b_data = b_mat.data();

        let m: usize = plan
            .free_a_positions()
            .iter()
            .map(|&m| self.dims()[m])
            .product();
        let coords = self.to_matrix_coords(plan.free_a_positions(), plan.ctr_a_positions());

        let mut c = vec![T::zero(); m * n];
        for (row, col, v) in coords {
            debug_assert!((col as usize) < k);
            let brow = &b_data[col as usize * n..(col as usize + 1) * n];
            let crow = &mut c[row as usize * n..(row as usize + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                *cj += v * bj;
            }
        }
        crate::counter::add_flops(2 * self.nnz() as u64 * n as u64);

        let natural_dims: Vec<usize> = plan
            .free_a_positions()
            .iter()
            .map(|&i| self.dims()[i])
            .chain(plan.free_b_positions().iter().map(|&j| b.dims()[j]))
            .collect();
        let c = DenseTensor::from_vec(natural_dims, c)?;
        let c = crate::transpose::permute(&c, plan.output_permutation())?;
        debug_assert_eq!(c.dims(), &out_dims[..]);
        Ok(c)
    }

    /// Sparse × sparse contraction producing a sparse tensor.
    ///
    /// The kernel under the *sparse-sparse* algorithm: both operands are
    /// fused to sparse matrices, key-sorted once, joined by a two-pointer
    /// merge over contracted-key runs, and accumulated in a dense panel
    /// ([`crate::ssmerge`]).
    pub fn contract_sparse(&self, spec: &str, b: &Self) -> Result<Self> {
        self.contract_sparse_impl(spec, b, None)
    }

    /// Sparse × sparse contraction with pre-computed output sparsity: only
    /// offsets present in `mask` (output linear offsets, any order) are
    /// accumulated; everything else is discarded on the fly.
    pub fn contract_sparse_masked(&self, spec: &str, b: &Self, mask: &[u64]) -> Result<Self> {
        self.contract_sparse_impl(spec, b, Some(mask))
    }

    fn contract_sparse_impl(&self, spec: &str, b: &Self, mask: Option<&[u64]>) -> Result<Self> {
        let plan = ContractPlan::parse(spec)?;
        let out_dims = plan.output_dims(self.dims(), b.dims())?;
        let out_shape = Shape::from(out_dims.clone());

        let m: u64 = plan
            .free_a_positions()
            .iter()
            .map(|&m| self.dims()[m] as u64)
            .product();
        let n: u64 = plan
            .free_b_positions()
            .iter()
            .map(|&m| b.dims()[m] as u64)
            .product();

        // A as (row, ctr) triples, stably key-sorted; B grouped by key
        let mut a_coords = self.to_matrix_coords(plan.free_a_positions(), plan.ctr_a_positions());
        a_coords.sort_by_key(|e| e.1);
        let btab = crate::ssmerge::SsBTable::build(
            b.to_matrix_coords(plan.ctr_b_positions(), plan.free_b_positions()),
        );

        let (triples, flops) = crate::ssmerge::merge_chunk(&a_coords, &btab, 0, m.max(1), n);
        crate::counter::add_flops(flops);

        // natural-order output strides: (free_a fused) * n + (free_b fused)
        // then convert to requested output order via permutation of indices.
        let natural_dims: Vec<usize> = plan
            .free_a_positions()
            .iter()
            .map(|&i| self.dims()[i])
            .chain(plan.free_b_positions().iter().map(|&j| b.dims()[j]))
            .collect();
        let natural_shape = Shape::from(natural_dims);
        let out_perm = plan.output_permutation();

        let natural_to_out = |nat_off: u64| -> u64 {
            let idx = natural_shape.unoffset(nat_off as usize);
            let out_idx: Vec<usize> = out_perm.iter().map(|&p| idx[p]).collect();
            out_shape.offset(&out_idx).expect("in bounds") as u64
        };

        // masking filters at extraction: each output element accumulates
        // independently, so this is value-identical to per-product masking
        let mask_set: Option<HashSet<u64>> = mask.map(|m| m.iter().copied().collect());
        let mut entries = Vec::with_capacity(triples.len());
        for (row, col, v) in triples {
            let out_off = natural_to_out(row * n + col);
            if let Some(ref ms) = mask_set {
                if !ms.contains(&out_off) {
                    continue;
                }
            }
            entries.push((out_off, v));
        }

        Self::from_entries(out_shape, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::einsum::einsum;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_sparse(shape: &[usize], density: f64, seed: u64) -> SparseTensor<f64> {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = DenseTensor::<f64>::from_fn(shape, |_| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        SparseTensor::from_dense(&dense, 0.0)
    }

    #[test]
    fn dense_roundtrip() {
        let t = DenseTensor::<f64>::from_vec([2, 3], vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0]).unwrap();
        let s = SparseTensor::from_dense(&t, 0.0);
        assert_eq!(s.nnz(), 3);
        assert!((s.sparsity() - 0.5).abs() < 1e-15);
        assert!(s.to_dense().allclose(&t, 0.0));
        assert_eq!(s.at(&[0, 1]), 1.0);
        assert_eq!(s.at(&[0, 0]), 0.0);
    }

    #[test]
    fn from_entries_sums_duplicates() {
        let s = SparseTensor::from_entries([4], vec![(1, 2.0), (1, 3.0), (0, 1.0)]).unwrap();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.at(&[1]), 5.0);
        assert!(SparseTensor::<f64>::from_entries([2], vec![(5, 1.0)]).is_err());
    }

    #[test]
    fn sparse_permute_matches_dense() {
        let s = random_sparse(&[3, 4, 5], 0.3, 1);
        let d = s.to_dense();
        let sp = s.permute(&[2, 0, 1]).unwrap();
        let dp = d.permute(&[2, 0, 1]).unwrap();
        assert!(sp.to_dense().allclose(&dp, 0.0));
    }

    #[test]
    fn sparse_dense_contraction_matches_einsum() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = random_sparse(&[4, 3, 5], 0.4, 3);
        let b = DenseTensor::<f64>::random([5, 3, 2], &mut rng);
        let c = s.contract_dense("ajk,kjc->ac", &b).unwrap();
        let c_ref = einsum("ajk,kjc->ac", &s.to_dense(), &b).unwrap();
        assert!(c.allclose(&c_ref, 1e-12));
    }

    #[test]
    fn sparse_dense_with_output_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = random_sparse(&[4, 3], 0.5, 5);
        let b = DenseTensor::<f64>::random([3, 6], &mut rng);
        let c = s.contract_dense("ik,kj->ji", &b).unwrap();
        let c_ref = einsum("ik,kj->ji", &s.to_dense(), &b).unwrap();
        assert!(c.allclose(&c_ref, 1e-12));
    }

    #[test]
    fn sparse_sparse_contraction_matches_einsum() {
        let a = random_sparse(&[4, 6], 0.4, 6);
        let b = random_sparse(&[6, 5], 0.4, 7);
        let c = a.contract_sparse("ik,kj->ij", &b).unwrap();
        let c_ref = einsum("ik,kj->ij", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().allclose(&c_ref, 1e-12));
    }

    #[test]
    fn sparse_sparse_higher_order() {
        let a = random_sparse(&[2, 3, 4], 0.5, 8);
        let b = random_sparse(&[4, 3, 5], 0.5, 9);
        let c = a.contract_sparse("ajk,kjc->ca", &b).unwrap();
        let c_ref = einsum("ajk,kjc->ca", &a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().allclose(&c_ref, 1e-12));
    }

    #[test]
    fn masked_contraction_restricts_output() {
        let a = random_sparse(&[4, 6], 0.8, 10);
        let b = random_sparse(&[6, 4], 0.8, 11);
        let full = a.contract_sparse("ik,kj->ij", &b).unwrap();
        // mask = diagonal offsets only
        let mask: Vec<u64> = (0..4).map(|i| (i * 4 + i) as u64).collect();
        let masked = a.contract_sparse_masked("ik,kj->ij", &b, &mask).unwrap();
        for (off, v) in masked.entries() {
            assert!(mask.contains(&off));
            assert!((v - full.to_dense().data()[off as usize]).abs() < 1e-12);
        }
        // every diagonal entry of full must be present in masked
        for &off in &mask {
            let fv = full.to_dense().data()[off as usize];
            if fv.abs() > 1e-12 {
                assert!((masked.to_dense().data()[off as usize] - fv).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn axpy_and_prune() {
        let a = SparseTensor::from_entries([4], vec![(0, 1.0), (2, 2.0)]).unwrap();
        let b = SparseTensor::from_entries([4], vec![(2, -1.0), (3, 4.0)]).unwrap();
        let mut c = a.axpy(2.0, &b).unwrap();
        assert_eq!(c.at(&[0]), 1.0);
        assert_eq!(c.at(&[2]), 0.0);
        assert_eq!(c.at(&[3]), 8.0);
        c.prune(1e-14);
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn norm_matches_dense() {
        let s = random_sparse(&[5, 5], 0.5, 12);
        assert!((s.norm() - s.to_dense().norm()).abs() < 1e-12);
    }
}

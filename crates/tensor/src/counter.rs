//! Global floating-point operation counters.
//!
//! CTF counts flops internally and the paper uses those counts as the basis
//! for every GFlops/s number it reports ("we measure FLOP operations using
//! the built in Cyclops routines for the list method"). We mirror that: the
//! GEMM and sparse kernels in this crate add to a process-global counter,
//! and higher layers snapshot it around timed regions.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);
static MEM_TRAFFIC: AtomicU64 = AtomicU64::new(0);

/// Add `n` floating point operations to the global counter.
#[inline]
pub fn add_flops(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Add `n` bytes of memory traffic (used by transpose kernels).
#[inline]
pub fn add_mem_traffic(n: u64) {
    MEM_TRAFFIC.fetch_add(n, Ordering::Relaxed);
}

/// Current value of the global flop counter.
pub fn flops() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Current value of the global memory-traffic counter (bytes).
pub fn mem_traffic() -> u64 {
    MEM_TRAFFIC.load(Ordering::Relaxed)
}

/// Reset both counters to zero. Returns the previous flop count.
pub fn reset_flops() -> u64 {
    MEM_TRAFFIC.store(0, Ordering::Relaxed);
    FLOPS.swap(0, Ordering::Relaxed)
}

/// RAII helper measuring the flops executed within a scope.
///
/// ```
/// let g = tt_tensor::FlopGuard::start();
/// // ... contractions ...
/// let flops_in_scope = g.elapsed();
/// ```
pub struct FlopGuard {
    start: u64,
}

impl FlopGuard {
    /// Snapshot the counter.
    pub fn start() -> Self {
        Self { start: flops() }
    }

    /// Flops added to the global counter since [`FlopGuard::start`].
    pub fn elapsed(&self) -> u64 {
        flops().wrapping_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_guard() {
        let g = FlopGuard::start();
        add_flops(100);
        add_flops(23);
        assert_eq!(g.elapsed(), 123);
        let g2 = FlopGuard::start();
        add_flops(7);
        assert_eq!(g2.elapsed(), 7);
        assert!(flops() >= 130);
    }

    #[test]
    fn mem_traffic_counts() {
        let before = mem_traffic();
        add_mem_traffic(64);
        assert!(mem_traffic() >= before + 64);
    }
}

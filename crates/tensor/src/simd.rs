//! Runtime SIMD feature dispatch for the GEMM microkernel.
//!
//! The microkernel in [`crate::gemm`] is compiled into several variants,
//! each behind `#[target_feature]`, and the variant to run is chosen *once
//! per process* from CPUID (via `is_x86_feature_detected!`) — so a portable
//! build (`-C target-cpu=x86-64`) still runs the AVX2+FMA kernel on
//! machines that have it. This replaces the previous approach of relying
//! entirely on ambient `-C target-cpu=native` codegen flags in
//! `.cargo/config.toml` (which are still applied to the *non*-dispatched
//! kernels; see that file's comment for how the two interact).
//!
//! ## Determinism contract
//!
//! Bitwise reproducibility (Sequential ≡ Threaded ≡ MultiProcess) holds
//! **per selected variant**: every process taking part in one computation
//! must select the same variant. Spawned multi-process workers inherit the
//! driver's environment, so the `TT_SIMD` override propagates automatically.
//! CI pins the variant (`TT_SIMD=avx2`) for the equivalence tests and runs
//! them a second time under native auto-dispatch.
//!
//! In practice the variants are also bitwise identical to *each other* —
//! rustc does not contract `mul`+`add` into FMA without explicit intrinsics,
//! and the accumulator tile fixes the summation order — but only the
//! per-variant guarantee is promised.
//!
//! ## Override
//!
//! `TT_SIMD` forces a variant: `baseline`, `avx2`, `avx512`, or `auto`
//! (default). A request for a level the CPU lacks is clamped down to the
//! best available one. `avx512` is *never* auto-selected: on the machines
//! this repo has been benchmarked on, LLVM's AVX-512 lowering of the
//! surrounding gather/scatter-heavy code was a measured regression, so the
//! 512-bit microkernel is opt-in for measurement.
//!
//! The variable is read once; changing it after the first kernel call has
//! no effect.

use std::sync::OnceLock;

/// Instruction-set level the microkernel dispatch selected.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Whatever the ambient compile flags produced (portable fallback).
    Baseline,
    /// 256-bit AVX2 + FMA variant.
    Avx2,
    /// 512-bit AVX-512F/VL/DQ variant (opt-in via `TT_SIMD=avx512`).
    Avx512,
}

impl SimdLevel {
    /// Human-readable name (`baseline` / `avx2` / `avx512`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Baseline => "baseline",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect(requested: Option<&str>) -> SimdLevel {
    let has_avx2 =
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma");
    let has_avx512 = has_avx2
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
        && std::arch::is_x86_feature_detected!("avx512dq");
    let avx2_or_base = if has_avx2 {
        SimdLevel::Avx2
    } else {
        SimdLevel::Baseline
    };
    match requested {
        Some("baseline") => SimdLevel::Baseline,
        Some("avx2") => avx2_or_base,
        Some("avx512") => {
            if has_avx512 {
                SimdLevel::Avx512
            } else {
                avx2_or_base
            }
        }
        // unknown strings behave like auto rather than aborting the run
        _ => avx2_or_base,
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect(_requested: Option<&str>) -> SimdLevel {
    SimdLevel::Baseline
}

/// The microkernel variant this process runs. Detected once (honoring the
/// `TT_SIMD` override) and cached for the lifetime of the process.
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let req = std::env::var("TT_SIMD").ok();
        detect(req.as_deref())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_is_clamped_to_cpu() {
        // whatever the CPU, every request maps to *some* valid level and
        // baseline is always honored
        assert_eq!(detect(Some("baseline")), SimdLevel::Baseline);
        let auto = detect(None);
        assert_eq!(detect(Some("definitely-not-a-level")), auto);
        // avx512 is never below what auto picks, and never above what the
        // CPU supports
        let a512 = detect(Some("avx512"));
        assert!(a512 == auto || a512 == SimdLevel::Avx512);
    }

    #[test]
    fn level_names() {
        assert_eq!(SimdLevel::Baseline.name(), "baseline");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Avx512.name(), "avx512");
    }

    #[test]
    fn process_level_is_stable() {
        assert_eq!(simd_level(), simd_level());
    }
}

//! Blocked N-dimensional tensor transposition — the HPTT stand-in.
//!
//! CTF lowers every contraction to matrix multiplication by transposing
//! (permuting) operands into a fused matrix layout; the paper reports this
//! under the "CTF transposition" time category (Fig. 7). The kernels here
//! perform the same role locally: an odometer-walk permutation for general
//! orders, with a cache-blocked fast path for the ubiquitous 2-D case.

use crate::dense::DenseTensor;
use crate::scalar::Scalar;
use crate::shape::is_permutation;
use crate::{Error, Result};

/// Cache block edge for the 2-D transpose fast path (elements).
const BLOCK: usize = 32;

/// Permute the modes of a tensor.
///
/// `perm[i]` gives the *input* mode that becomes output mode `i`, i.e.
/// `out[j_0, …, j_{n-1}] = t[j_{inv(0)}, …]` with
/// `out.dim(i) == t.dim(perm[i])` — the NumPy `transpose(perm)` convention.
pub fn permute<T: Scalar>(t: &DenseTensor<T>, perm: &[usize]) -> Result<DenseTensor<T>> {
    let n = t.order();
    if !is_permutation(perm, n) {
        return Err(Error::BadIndex(format!(
            "{perm:?} is not a permutation of 0..{n}"
        )));
    }
    crate::counter::add_mem_traffic(2 * (t.len() * std::mem::size_of::<T>()) as u64);

    // identity permutation: plain copy
    if perm.iter().enumerate().all(|(i, &p)| i == p) {
        return Ok(t.clone());
    }

    // 2-D fast path
    if n == 2 {
        return Ok(transpose2d(t));
    }

    let out_shape = t.shape().permuted(perm)?;
    let in_strides = t.shape().strides();
    // stride in the input for each *output* mode
    let strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let dims = out_shape.dims().to_vec();
    let mut out = vec![T::zero(); t.len()];

    if !t.is_empty() {
        // odometer walk over output positions; input offset tracked incrementally
        let mut idx = vec![0usize; n];
        let mut in_off = 0usize;
        let data = t.data();
        for slot in out.iter_mut() {
            *slot = data[in_off];
            // increment odometer (last mode fastest)
            for k in (0..n).rev() {
                idx[k] += 1;
                in_off += strides[k];
                if idx[k] < dims[k] {
                    break;
                }
                in_off -= strides[k] * dims[k];
                idx[k] = 0;
                if k == 0 {
                    break;
                }
            }
        }
    }

    DenseTensor::from_vec(out_shape, out)
}

/// Cache-blocked out-of-place 2-D transpose.
fn transpose2d<T: Scalar>(t: &DenseTensor<T>) -> DenseTensor<T> {
    let (r, c) = (t.dims()[0], t.dims()[1]);
    let mut out = vec![T::zero(); r * c];
    let data = t.data();
    for ib in (0..r).step_by(BLOCK) {
        for jb in (0..c).step_by(BLOCK) {
            let imax = (ib + BLOCK).min(r);
            let jmax = (jb + BLOCK).min(c);
            for i in ib..imax {
                for j in jb..jmax {
                    out[j * r + i] = data[i * c + j];
                }
            }
        }
    }
    DenseTensor::from_vec([c, r], out).expect("volume preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_permute(t: &DenseTensor<f64>, perm: &[usize]) -> DenseTensor<f64> {
        let out_shape = t.shape().permuted(perm).unwrap();
        let mut out = DenseTensor::zeros(out_shape.clone());
        for out_idx in out_shape.index_iter() {
            let mut in_idx = vec![0usize; t.order()];
            for (i, &p) in perm.iter().enumerate() {
                in_idx[p] = out_idx[i];
            }
            out.set(&out_idx, t.at(&in_idx));
        }
        out
    }

    #[test]
    fn matrix_transpose() {
        let t = DenseTensor::<f64>::from_fn([2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let tt = permute(&t, &[1, 0]).unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(tt.at(&[j, i]), t.at(&[i, j]));
            }
        }
    }

    #[test]
    fn large_matrix_transpose_blocked() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = DenseTensor::<f64>::random([67, 129], &mut rng);
        let tt = permute(&t, &[1, 0]).unwrap();
        let back = permute(&tt, &[1, 0]).unwrap();
        assert!(t.allclose(&back, 0.0));
    }

    #[test]
    fn identity_permutation_is_copy() {
        let t = DenseTensor::<f64>::from_fn([2, 3, 4], |i| (i[0] + i[1] + i[2]) as f64);
        let p = permute(&t, &[0, 1, 2]).unwrap();
        assert_eq!(p.data(), t.data());
    }

    #[test]
    fn order3_permutations_match_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = DenseTensor::<f64>::random([3, 4, 5], &mut rng);
        for perm in [[0usize, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            let fast = permute(&t, &perm).unwrap();
            let slow = naive_permute(&t, &perm);
            assert!(fast.allclose(&slow, 0.0), "perm {perm:?}");
        }
    }

    #[test]
    fn order4_roundtrip() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = DenseTensor::<f64>::random([2, 3, 4, 5], &mut rng);
        let p = permute(&t, &[3, 1, 0, 2]).unwrap();
        assert_eq!(p.dims(), &[5, 3, 2, 4]);
        // invert: output mode i holds input mode perm[i]
        let inv = [2usize, 1, 3, 0];
        let back = permute(&p, &inv).unwrap();
        assert!(t.allclose(&back, 0.0));
    }

    #[test]
    fn rejects_bad_permutation() {
        let t = DenseTensor::<f64>::zeros([2, 2]);
        assert!(permute(&t, &[0, 0]).is_err());
        assert!(permute(&t, &[0]).is_err());
    }

    #[test]
    fn zero_volume_tensor() {
        let t = DenseTensor::<f64>::zeros([2, 0, 3]);
        let p = permute(&t, &[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[3, 2, 0]);
        assert_eq!(p.len(), 0);
    }
}

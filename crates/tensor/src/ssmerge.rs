//! Sorted-merge sparse×sparse contraction kernel.
//!
//! The paper's *sparse-sparse* algorithm multiplies two sparse operands
//! fused to matrices: `A` as `(row, ctr)` and `B` as `(ctr, col)`. The
//! first-generation kernel in this repo joined them through a per-entry
//! `BTreeMap` lookup and accumulated every product into another map —
//! ~0.04 GFlop/s, a ~600× cliff below the packed dense GEMM. This module
//! is the replacement:
//!
//! 1. **Sort once, merge many.** `B` is grouped into a [`SsBTable`]: runs
//!    of entries sharing a contracted key, flat arrays, ascending key
//!    order. `A` entries are stably sorted by contracted key. Both sorts
//!    happen once per operand (the distributed executor caches the sorted
//!    forms in its resident-operand store, amortizing them across the many
//!    contractions of a Davidson solve).
//! 2. **Two-pointer merge.** Matching key runs are found by a linear merge
//!    over the two sorted key sequences — no per-entry map lookups.
//! 3. **Dense micro-accumulator.** Each matching `A`-run × `B`-run pair is
//!    an outer product scattered into a dense `rows × n` panel (flat adds
//!    at computed offsets), with a hash-map fallback when the panel would
//!    be unreasonably large. Both accumulators apply the *same products in
//!    the same order* per output element, so which one runs never changes
//!    a bit of the result.
//!
//! ## Determinism
//!
//! For each output element `(row, col)` the products are applied in
//! ascending contracted-key order, with ties (duplicate `(row, key)`
//! entries) in input order. That order depends only on the *content* of
//! the row's entries — not on how rows were split across chunks — which is
//! what keeps row-chunked threaded/multi-process execution bitwise equal
//! to sequential execution. Returned triples are sorted by `(row, col)`.
//!
//! The kernel is generic over [`Scalar`], so the same code serves `f64`
//! DMRG and `Complex64` (TDVP-style) workloads.

use crate::scalar::Scalar;
use std::collections::HashMap;

/// Above this many panel elements (`rows × n`), [`merge_chunk`] switches
/// from the dense panel accumulator to a hash map. 2²² f64 elements is a
/// 32 MiB panel — comfortably larger than every benched DMRG block, so the
/// fallback only triggers for pathologically wide outputs.
const PANEL_MAX_ELEMS: u64 = 1 << 22;

/// `B` side of a sparse×sparse contraction, grouped by contracted key:
/// ascending distinct keys, and for each key a run of `(col, val)` entries
/// in flat arrays. `col` is the *fused free index* (`0..n`) — deliberately
/// independent of the other operand's dims and of the output permutation,
/// so a cached table is reusable across contractions.
#[derive(Debug, Clone, PartialEq)]
pub struct SsBTable<T> {
    keys: Vec<u64>,
    starts: Vec<usize>,
    cols: Vec<u64>,
    vals: Vec<T>,
}

impl<T: Scalar> SsBTable<T> {
    /// Group `(ctr, col, val)` entries. Entries are stably sorted by
    /// `ctr`, so within a run the input order is preserved.
    pub fn build(mut entries: Vec<(u64, u64, T)>) -> Self {
        entries.sort_by_key(|e| e.0);
        let mut keys = Vec::new();
        let mut starts = Vec::new();
        let mut cols = Vec::with_capacity(entries.len());
        let mut vals = Vec::with_capacity(entries.len());
        for (ctr, col, v) in entries {
            if keys.last() != Some(&ctr) {
                keys.push(ctr);
                starts.push(cols.len());
            }
            cols.push(col);
            vals.push(v);
        }
        starts.push(cols.len());
        Self {
            keys,
            starts,
            cols,
            vals,
        }
    }

    /// Reassemble from the flat wire form: `keys[i]` has `lens[i]`
    /// entries, laid out consecutively in `cols`/`vals`. Keys must be
    /// strictly ascending (as produced by [`Self::run_lens`] round trips).
    pub fn from_runs(keys: Vec<u64>, lens: &[u64], cols: Vec<u64>, vals: Vec<T>) -> Self {
        debug_assert_eq!(keys.len(), lens.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let mut starts = Vec::with_capacity(keys.len() + 1);
        let mut at = 0usize;
        starts.push(0);
        for &l in lens {
            at += l as usize;
            starts.push(at);
        }
        debug_assert_eq!(at, cols.len());
        debug_assert_eq!(cols.len(), vals.len());
        Self {
            keys,
            starts,
            cols,
            vals,
        }
    }

    /// Distinct contracted keys, ascending.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Run length per key (wire form companion of [`Self::keys`]).
    pub fn run_lens(&self) -> impl Iterator<Item = u64> + '_ {
        self.starts.windows(2).map(|w| (w[1] - w[0]) as u64)
    }

    /// Fused free-index of every entry, run-concatenated.
    pub fn cols(&self) -> &[u64] {
        &self.cols
    }

    /// Value of every entry, run-concatenated.
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Total stored entries.
    pub fn n_entries(&self) -> usize {
        self.cols.len()
    }

    /// Number of distinct keys.
    pub fn n_keys(&self) -> usize {
        self.keys.len()
    }

    /// Length of the run for `key` (0 if absent) — the per-entry work
    /// estimate used for volume-balanced chunking.
    pub fn run_len(&self, key: u64) -> usize {
        match self.keys.binary_search(&key) {
            Ok(i) => self.starts[i + 1] - self.starts[i],
            Err(_) => 0,
        }
    }

    /// The `(cols, vals)` run for key index `i`.
    #[inline]
    fn run(&self, i: usize) -> (&[u64], &[T]) {
        let (s, e) = (self.starts[i], self.starts[i + 1]);
        (&self.cols[s..e], &self.vals[s..e])
    }
}

/// Product accumulator abstraction: panel or hash map, bitwise-identical
/// results (same products, same per-element order). Statically dispatched —
/// `add` sits on the innermost loop.
trait SsAcc<T: Scalar> {
    fn add(&mut self, idx: u64, p: T);
    fn finish(self) -> Vec<(u64, T)>;
}

struct PanelAcc<T> {
    panel: Vec<T>,
    touched: Vec<bool>,
    order: Vec<u64>,
}

impl<T: Scalar> SsAcc<T> for PanelAcc<T> {
    #[inline(always)]
    fn add(&mut self, idx: u64, p: T) {
        let i = idx as usize;
        if !self.touched[i] {
            self.touched[i] = true;
            self.order.push(idx);
        }
        self.panel[i] += p;
    }
    fn finish(mut self) -> Vec<(u64, T)> {
        self.order.sort_unstable();
        self.order
            .iter()
            .map(|&idx| (idx, self.panel[idx as usize]))
            .collect()
    }
}

struct HashAcc<T> {
    map: HashMap<u64, T>,
}

impl<T: Scalar> SsAcc<T> for HashAcc<T> {
    #[inline(always)]
    fn add(&mut self, idx: u64, p: T) {
        *self.map.entry(idx).or_insert_with(T::zero) += p;
    }
    fn finish(self) -> Vec<(u64, T)> {
        let mut out: Vec<(u64, T)> = self.map.into_iter().collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }
}

/// The merge loop, monomorphized per accumulator type.
fn merge_into<T: Scalar, A: SsAcc<T>>(
    a: &[(u64, u64, T)],
    btab: &SsBTable<T>,
    r0: u64,
    n: u64,
    acc: &mut A,
) -> u64 {
    let mut flops = 0u64;
    let mut ai = 0usize;
    let mut bi = 0usize;
    while ai < a.len() && bi < btab.n_keys() {
        let key = a[ai].1;
        let mut aj = ai + 1;
        while aj < a.len() && a[aj].1 == key {
            aj += 1;
        }
        while bi < btab.n_keys() && btab.keys[bi] < key {
            bi += 1;
        }
        if bi < btab.n_keys() && btab.keys[bi] == key {
            let (bcols, bvals) = btab.run(bi);
            flops += 2 * (aj - ai) as u64 * bcols.len() as u64;
            for &(row, _, va) in &a[ai..aj] {
                let base = (row - r0) * n;
                for (&col, &vb) in bcols.iter().zip(bvals.iter()) {
                    acc.add(base + col, va * vb);
                }
            }
        }
        ai = aj;
    }
    flops
}

/// Contract one row-chunk of `A` against a grouped `B` table.
///
/// * `a` — `(row, key, val)` entries with `r0 <= row < r1`, sorted
///   **stably** by `key` (ties in original stored order).
/// * `btab` — the grouped `B` operand.
/// * `r0, r1` — the fused row range this chunk covers.
/// * `n` — the fused free dimension of `B` (panel width).
///
/// Returns `(row, col, value)` triples sorted by `(row, col)` — only
/// elements that received at least one product, matching the sparsity
/// semantics of hash-join kernels — plus the flop count (2 per product,
/// counted before any caller-side masking).
pub fn merge_chunk<T: Scalar>(
    a: &[(u64, u64, T)],
    btab: &SsBTable<T>,
    r0: u64,
    r1: u64,
    n: u64,
) -> (Vec<(u64, u64, T)>, u64) {
    debug_assert!(a.iter().all(|&(row, _, _)| r0 <= row && row < r1));
    debug_assert!(a.windows(2).all(|w| w[0].1 <= w[1].1), "A not key-sorted");
    let rows = r1.saturating_sub(r0);
    let (flat, flops) = if rows.checked_mul(n).is_some_and(|e| e <= PANEL_MAX_ELEMS) {
        let mut acc = PanelAcc {
            panel: vec![T::zero(); (rows * n) as usize],
            touched: vec![false; (rows * n) as usize],
            order: Vec::new(),
        };
        let flops = merge_into(a, btab, r0, n, &mut acc);
        (acc.finish(), flops)
    } else {
        let mut acc = HashAcc {
            map: HashMap::new(),
        };
        let flops = merge_into(a, btab, r0, n, &mut acc);
        (acc.finish(), flops)
    };
    let out = flat
        .into_iter()
        .map(|(idx, v)| (r0 + idx / n, idx % n, v))
        .collect();
    (out, flops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    /// Naive triple-loop reference: for every (a, b) entry pair with equal
    /// key, accumulate into a dense map — key-ascending per element like
    /// the kernel.
    fn naive<T: Scalar>(a: &[(u64, u64, T)], b: &[(u64, u64, T)], n: u64) -> Vec<(u64, u64, T)> {
        let mut keys: Vec<u64> = a.iter().map(|e| e.1).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut acc: HashMap<(u64, u64), T> = HashMap::new();
        for key in keys {
            for &(row, ka, va) in a.iter().filter(|e| e.1 == key) {
                let _ = ka;
                for &(kb, col, vb) in b.iter().filter(|e| e.0 == key) {
                    let _ = kb;
                    *acc.entry((row, col)).or_insert_with(T::zero) += va * vb;
                }
            }
        }
        let mut out: Vec<(u64, u64, T)> = acc.into_iter().map(|((r, c), v)| (r, c, v)).collect();
        out.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let _ = n;
        out
    }

    fn sorted_a<T: Scalar>(mut a: Vec<(u64, u64, T)>) -> Vec<(u64, u64, T)> {
        a.sort_by_key(|e| e.1);
        a
    }

    #[test]
    fn small_merge_matches_naive() {
        let a = vec![(0, 2, 1.5), (1, 2, -2.0), (0, 5, 3.0), (2, 7, 1.0)];
        let b = vec![(2, 0, 2.0), (2, 3, 1.0), (5, 1, -1.0), (6, 0, 9.0)];
        let btab = SsBTable::build(b.clone());
        let (got, flops) = merge_chunk(&sorted_a(a.clone()), &btab, 0, 3, 4);
        assert_eq!(got, naive(&a, &b, 4));
        // key 2: 2 A × 2 B = 4 products, key 5: 1×1 — 5 products total
        assert_eq!(flops, 10);
    }

    #[test]
    fn empty_and_disjoint_runs() {
        let btab = SsBTable::build(Vec::<(u64, u64, f64)>::new());
        let (got, flops) = merge_chunk(&[(0, 1, 1.0)], &btab, 0, 1, 4);
        assert!(got.is_empty());
        assert_eq!(flops, 0);
        // keys present on both sides but never equal
        let btab = SsBTable::build(vec![(0, 0, 1.0), (2, 1, 1.0)]);
        let a = sorted_a(vec![(0, 1, 1.0), (0, 3, 1.0)]);
        let (got, flops) = merge_chunk(&a, &btab, 0, 1, 4);
        assert!(got.is_empty());
        assert_eq!(flops, 0);
    }

    #[test]
    fn duplicate_key_entries_accumulate_in_order() {
        // duplicate (row, key) pairs on the A side and duplicate
        // (key, col) pairs on the B side must all contribute
        let a = vec![(0, 1, 2.0), (0, 1, 3.0)];
        let b = vec![(1, 0, 1.0), (1, 0, 10.0)];
        let btab = SsBTable::build(b.clone());
        let (got, _) = merge_chunk(&sorted_a(a.clone()), &btab, 0, 1, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], (0, 0, (2.0 + 3.0) * 11.0));
    }

    #[test]
    fn complex_merge_matches_naive() {
        let c = Complex64::new;
        let a = vec![
            (0, 0, c(1.0, 2.0)),
            (1, 0, c(0.0, -1.0)),
            (0, 3, c(2.0, 0.5)),
        ];
        let b = vec![
            (0, 1, c(0.5, 0.5)),
            (3, 0, c(-1.0, 1.0)),
            (3, 1, c(2.0, 2.0)),
        ];
        let btab = SsBTable::build(b.clone());
        let (got, _) = merge_chunk(&sorted_a(a.clone()), &btab, 0, 2, 2);
        let want = naive(&a, &b, 2);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!((g.0, g.1), (w.0, w.1));
            assert!((g.2 - w.2).abs() < 1e-14);
        }
    }

    #[test]
    fn chunked_rows_equal_whole_bitwise() {
        // splitting A by row ranges and concatenating must be bitwise
        // equal to one chunk over all rows
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let (m, k, n) = (40u64, 23u64, 17u64);
        let mut a = Vec::new();
        for row in 0..m {
            for key in 0..k {
                if rng.gen_bool(0.3) {
                    a.push((row, key, rng.gen_range(-1.0..1.0f64)));
                }
            }
        }
        let mut b = Vec::new();
        for key in 0..k {
            for col in 0..n {
                if rng.gen_bool(0.3) {
                    b.push((key, col, rng.gen_range(-1.0..1.0f64)));
                }
            }
        }
        let btab = SsBTable::build(b);
        let (whole, wf) = merge_chunk(&sorted_a(a.clone()), &btab, 0, m, n);
        for splits in [2u64, 3, 7] {
            let mut parts = Vec::new();
            let mut pf = 0;
            for s in 0..splits {
                let (r0, r1) = (s * m / splits, (s + 1) * m / splits);
                let chunk: Vec<_> = a
                    .iter()
                    .copied()
                    .filter(|&(row, _, _)| r0 <= row && row < r1)
                    .collect();
                let (part, f) = merge_chunk(&sorted_a(chunk), &btab, r0, r1, n);
                parts.extend(part);
                pf += f;
            }
            // chunks are row-disjoint and row-sorted, so concatenation is
            // already (row, col)-sorted
            assert_eq!(whole, parts, "split {splits} changed bits");
            assert_eq!(wf, pf);
        }
    }

    #[test]
    fn hash_fallback_is_bitwise_identical() {
        // same input through both accumulators: force the hash path by a
        // huge row range, then compare against the panel path shifted back
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let n = 8u64;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for key in 0..16u64 {
            for row in 0..8u64 {
                if rng.gen_bool(0.5) {
                    a.push((row, key, rng.gen_range(-1.0..1.0f64)));
                }
            }
            for col in 0..n {
                if rng.gen_bool(0.5) {
                    b.push((key, col, rng.gen_range(-1.0..1.0f64)));
                }
            }
        }
        let btab = SsBTable::build(b);
        let (panel, _) = merge_chunk(&sorted_a(a.clone()), &btab, 0, 8, n);
        // rows < PANEL_MAX but rows*n above it → hash accumulator
        let wide_r1 = PANEL_MAX_ELEMS; // rows * 8 > PANEL_MAX_ELEMS
        let (hash, _) = merge_chunk(&sorted_a(a), &btab, 0, wide_r1, n);
        assert_eq!(panel, hash);
    }

    #[test]
    fn table_wire_roundtrip() {
        let b = vec![(3u64, 1u64, 4.0f64), (1, 0, 2.0), (3, 2, 5.0), (9, 9, 1.0)];
        let t = SsBTable::build(b);
        assert_eq!(t.keys(), &[1, 3, 9]);
        let lens: Vec<u64> = t.run_lens().collect();
        assert_eq!(lens, vec![1, 2, 1]);
        assert_eq!(t.run_len(3), 2);
        assert_eq!(t.run_len(2), 0);
        let rt = SsBTable::from_runs(
            t.keys().to_vec(),
            &lens,
            t.cols().to_vec(),
            t.vals().to_vec(),
        );
        assert_eq!(t, rt);
        assert_eq!(rt.n_entries(), 4);
    }
}

//! Scalar element types for tensors.
//!
//! The paper's tensors are complex in general but both benchmark
//! Hamiltonians (Heisenberg `J1-J2`, triangular Hubbard) are real, so `f64`
//! is the workhorse type. [`Complex64`] is provided (with full arithmetic)
//! so the dense kernels remain usable for complex-valued tensor networks.

use rand::Rng;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Element type usable inside tensors.
///
/// Deliberately minimal: the set of operations the kernels in this workspace
/// actually need (ring arithmetic, conjugation, absolute value, scaling by a
/// real, random sampling for test/workload generation).
pub trait Scalar:
    Copy
    + PartialEq
    + fmt::Debug
    + fmt::Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum<Self>
    + Default
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Complex conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Squared modulus, `|x|^2`, always real.
    fn abs2(self) -> f64;
    /// Modulus `|x|`.
    fn abs(self) -> f64 {
        self.abs2().sqrt()
    }
    /// Embed a real number.
    fn from_f64(x: f64) -> Self;
    /// Real part.
    fn real(self) -> f64;
    /// Imaginary part (zero for reals).
    fn imag(self) -> f64;
    /// Reassemble from real and imaginary parts (imaginary part is
    /// discarded for real types; kernels that split complex arithmetic
    /// into per-plane passes use this for the writeback).
    fn from_re_im(re: f64, im: f64) -> Self;
    /// Multiply by a real scalar.
    fn scale(self, x: f64) -> Self;
    /// Uniform sample in `[-1, 1]` (each component for complex).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
    /// True if this type carries an imaginary component.
    fn is_complex() -> bool;
}

impl Scalar for f64 {
    #[inline(always)]
    fn zero() -> Self {
        0.0
    }
    #[inline(always)]
    fn one() -> Self {
        1.0
    }
    #[inline(always)]
    fn conj(self) -> Self {
        self
    }
    #[inline(always)]
    fn abs2(self) -> f64 {
        self * self
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn real(self) -> f64 {
        self
    }
    #[inline(always)]
    fn imag(self) -> f64 {
        0.0
    }
    #[inline(always)]
    fn from_re_im(re: f64, _im: f64) -> Self {
        re
    }
    #[inline(always)]
    fn scale(self, x: f64) -> Self {
        self * x
    }
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen_range(-1.0..1.0)
    }
    #[inline(always)]
    fn is_complex() -> bool {
        false
    }
}

/// A complex number with `f64` components.
///
/// Hand-rolled (the `num-complex` crate is outside the allowed dependency
/// set); implements exactly the arithmetic the kernels need.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Construct from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }
}
impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}
impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}
impl Div for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, o: Self) -> Self {
        let d = o.re * o.re + o.im * o.im;
        Self::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}
impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}
impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, o: Self) {
        self.re += o.re;
        self.im += o.im;
    }
}
impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, o: Self) {
        self.re -= o.re;
        self.im -= o.im;
    }
}
impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}
impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, o: Self) {
        *self = *self / o;
    }
}
impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex64::new(0.0, 0.0), |a, b| a + b)
    }
}

impl Scalar for Complex64 {
    #[inline(always)]
    fn zero() -> Self {
        Self::new(0.0, 0.0)
    }
    #[inline(always)]
    fn one() -> Self {
        Self::new(1.0, 0.0)
    }
    #[inline(always)]
    fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }
    #[inline(always)]
    fn abs2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        Self::new(x, 0.0)
    }
    #[inline(always)]
    fn real(self) -> f64 {
        self.re
    }
    #[inline(always)]
    fn imag(self) -> f64 {
        self.im
    }
    #[inline(always)]
    fn from_re_im(re: f64, im: f64) -> Self {
        Self::new(re, im)
    }
    #[inline(always)]
    fn scale(self, x: f64) -> Self {
        Self::new(self.re * x, self.im * x)
    }
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    }
    #[inline(always)]
    fn is_complex() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_field_axioms() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 4.0);
        let c = Complex64::new(3.0, 0.5);
        // associativity/commutativity spot checks
        assert_eq!(a + b, b + a);
        assert!(((a * b) * c - a * (b * c)).abs() < 1e-12);
        // distribution
        assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-12);
        // inverse
        let inv = Complex64::one() / a;
        assert!((a * inv - Complex64::one()).abs() < 1e-12);
    }

    #[test]
    fn conjugation_and_modulus() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.abs2(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert!((a * a.conj()).im.abs() < 1e-15);
        assert_eq!((a * a.conj()).re, 25.0);
    }

    #[test]
    fn real_scalar_ops() {
        assert_eq!(<f64 as Scalar>::one() + <f64 as Scalar>::zero(), 1.0);
        assert_eq!(2.0f64.conj(), 2.0);
        assert_eq!((-3.0f64).abs2(), 9.0);
        assert_eq!(2.5f64.scale(2.0), 5.0);
        assert!(!<f64 as Scalar>::is_complex());
        assert!(<Complex64 as Scalar>::is_complex());
    }

    #[test]
    fn imaginary_unit() {
        assert_eq!(Complex64::I * Complex64::I, -Complex64::one());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }
}

//! Shapes, strides and multi-index arithmetic for row-major tensors.

use crate::{Error, Result};

/// The shape (mode dimensions) of a tensor.
///
/// An order-0 shape (no modes) denotes a scalar tensor with one element.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

impl Shape {
    /// Number of modes (tensor order).
    pub fn order(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for order 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True if any mode has zero extent.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimension of mode `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides (last mode fastest).
    pub fn strides(&self) -> Vec<usize> {
        let n = self.0.len();
        let mut s = vec![1usize; n];
        for i in (0..n.saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flatten a multi-index to a linear (row-major) offset.
    pub fn offset(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.0.len() {
            return Err(Error::BadIndex(format!(
                "index order {} != tensor order {}",
                idx.len(),
                self.0.len()
            )));
        }
        let mut off = 0usize;
        for (k, (&i, &d)) in idx.iter().zip(self.0.iter()).enumerate() {
            if i >= d {
                return Err(Error::BadIndex(format!(
                    "index {i} out of bounds for mode {k} (dim {d})"
                )));
            }
            off = off * d + i;
        }
        Ok(off)
    }

    /// Inverse of [`Shape::offset`]: linear offset to multi-index.
    pub fn unoffset(&self, mut off: usize) -> Vec<usize> {
        let n = self.0.len();
        let mut idx = vec![0usize; n];
        for i in (0..n).rev() {
            let d = self.0[i];
            idx[i] = off % d;
            off /= d;
        }
        idx
    }

    /// Shape obtained by permuting modes: `result.dim(i) == self.dim(perm[i])`.
    pub fn permuted(&self, perm: &[usize]) -> Result<Shape> {
        if !is_permutation(perm, self.order()) {
            return Err(Error::BadIndex(format!(
                "{perm:?} is not a permutation of 0..{}",
                self.order()
            )));
        }
        Ok(Shape(perm.iter().map(|&p| self.0[p]).collect()))
    }

    /// Iterate all multi-indices in row-major order.
    pub fn index_iter(&self) -> IndexIter {
        IndexIter {
            shape: self.0.clone(),
            next: if self.is_empty() {
                None
            } else {
                Some(vec![0; self.0.len()])
            },
        }
    }
}

/// Check that `perm` is a permutation of `0..n`.
pub fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p >= n || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Row-major iterator over all multi-indices of a shape.
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.take()?;
        // compute successor (odometer increment, last mode fastest)
        let mut succ = cur.clone();
        let mut i = self.shape.len();
        loop {
            if i == 0 {
                // order-0 tensor: single index, no successor
                self.next = None;
                break;
            }
            i -= 1;
            succ[i] += 1;
            if succ[i] < self.shape[i] {
                self.next = Some(succ);
                break;
            }
            succ[i] = 0;
            if i == 0 {
                self.next = None;
                break;
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.order(), 3);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::from([3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.unoffset(off);
            assert_eq!(s.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn offset_bounds_checked() {
        let s = Shape::from([2, 2]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[1, 1]).is_ok());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::from(Vec::new());
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]).unwrap(), 0);
        let all: Vec<_> = s.index_iter().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn index_iter_visits_all_in_order() {
        let s = Shape::from([2, 3]);
        let all: Vec<_> = s.index_iter().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
        for (k, idx) in all.iter().enumerate() {
            assert_eq!(s.offset(idx).unwrap(), k);
        }
    }

    #[test]
    fn empty_dim_iterates_nothing() {
        let s = Shape::from([2, 0, 3]);
        assert!(s.is_empty());
        assert_eq!(s.index_iter().count(), 0);
    }

    #[test]
    fn permuted_shape() {
        let s = Shape::from([2, 3, 4]);
        let p = s.permuted(&[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        assert!(s.permuted(&[0, 0, 1]).is_err());
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation(&[1, 0, 2], 3));
        assert!(!is_permutation(&[1, 1, 2], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
    }
}

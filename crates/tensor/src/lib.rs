//! `tt-tensor` — dense and sparse *local* tensor kernels.
//!
//! This crate is the single-address-space substrate that everything else in
//! the workspace builds on. It plays the role that vendor BLAS (Cray LibSci,
//! Intel MKL), HPTT and CTF's local kernels play in the paper:
//!
//! * [`DenseTensor`] — N-dimensional row-major dense tensors over a
//!   [`Scalar`] element type (`f64` or [`Complex64`]),
//! * [`einsum`] — Einstein-summation contraction of two tensors, lowered to
//!   transpose-transpose-GEMM-transpose (TTGT) exactly like CTF,
//! * [`gemm`] — a tiled, cache-blocked matrix-multiply kernel,
//! * [`transpose::permute`] — blocked N-d transposition (the HPTT stand-in),
//! * [`SparseTensor`] — coordinate-format sparse tensors with
//!   sparse×dense and sparse×sparse contraction kernels (the local pieces of
//!   the paper's *sparse-dense* and *sparse-sparse* algorithms),
//! * [`counter`] — global flop/memory-traffic counters mirroring CTF's
//!   built-in flop counting, which the paper uses to report GFlops/s.
//!
//! All contraction entry points count flops; nothing here allocates behind
//! the caller's back beyond the result buffers.

pub mod counter;
pub mod dense;
pub mod einsum;
pub mod gemm;
pub mod scalar;
pub mod shape;
pub mod simd;
pub mod sparse;
pub mod ssmerge;
pub mod transpose;

pub use counter::{flops, reset_flops, FlopGuard};
pub use dense::DenseTensor;
pub use einsum::{einsum, einsum_into, ContractPlan};
pub use gemm::{gemm, gemm_f64, gemm_path, GemmPath, Layout, PackedB, PackedBlock};
pub use scalar::{Complex64, Scalar};
pub use shape::Shape;
pub use simd::{simd_level, SimdLevel};
pub use sparse::SparseTensor;
pub use ssmerge::SsBTable;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by tensor kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Shapes of the operands are incompatible with the requested operation.
    ShapeMismatch(String),
    /// An einsum specification string could not be parsed.
    BadSpec(String),
    /// Index out of bounds or otherwise invalid.
    BadIndex(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            Error::BadSpec(s) => write!(f, "bad einsum spec: {s}"),
            Error::BadIndex(s) => write!(f, "bad index: {s}"),
        }
    }
}

impl std::error::Error for Error {}

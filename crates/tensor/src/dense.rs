//! Dense row-major N-dimensional tensors.

use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::transpose;
use crate::{Error, Result};
use rand::Rng;

/// A dense tensor with row-major contiguous storage.
#[derive(Clone, PartialEq)]
pub struct DenseTensor<T: Scalar = f64> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Scalar> std::fmt::Debug for DenseTensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DenseTensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.data.len())
        }
    }
}

impl<T: Scalar> DenseTensor<T> {
    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Self {
            shape,
            data: vec![T::zero(); n],
        }
    }

    /// Tensor from existing data (row-major). Length must match the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(Error::ShapeMismatch(format!(
                "shape {:?} wants {} elements, got {}",
                shape,
                shape.len(),
                data.len()
            )));
        }
        Ok(Self { shape, data })
    }

    /// Tensor whose element at multi-index `idx` is `f(idx)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.len());
        for idx in shape.index_iter() {
            data.push(f(&idx));
        }
        // order-0 scalar: index_iter yields one empty index, so data has 1 elt
        Self { shape, data }
    }

    /// Uniform random tensor with entries in `[-1, 1]`.
    pub fn random(shape: impl Into<Shape>, rng: &mut (impl Rng + ?Sized)) -> Self {
        let shape = shape.into();
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(T::sample_uniform(rng));
        }
        Self { shape, data }
    }

    /// Order-0 tensor holding a single value.
    pub fn scalar(v: T) -> Self {
        Self {
            shape: Shape(Vec::new()),
            data: vec![v],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = T::one();
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Mode dimensions.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Tensor order (number of modes).
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw data, row-major.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the raw data vector.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx).expect("index in bounds")]
    }

    /// Set the element at a multi-index.
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.offset(idx).expect("index in bounds");
        self.data[off] = v;
    }

    /// Checked element access.
    pub fn get(&self, idx: &[usize]) -> Result<T> {
        Ok(self.data[self.shape.offset(idx)?])
    }

    /// Reinterpret with a new shape of identical volume (no data movement).
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(Error::ShapeMismatch(format!(
                "reshape {:?} -> {:?} changes volume",
                self.shape, shape
            )));
        }
        self.shape = shape;
        Ok(self)
    }

    /// Permute modes: `out[i0,..] = self[i_perm[0],..]`; see [`transpose::permute`].
    pub fn permute(&self, perm: &[usize]) -> Result<Self> {
        transpose::permute(self, perm)
    }

    /// Matricize: permute modes so `row_modes` (in order) form the row index
    /// and `col_modes` the column index, then reshape to 2-D.
    pub fn matricize(&self, row_modes: &[usize], col_modes: &[usize]) -> Result<Self> {
        let mut perm = Vec::with_capacity(self.order());
        perm.extend_from_slice(row_modes);
        perm.extend_from_slice(col_modes);
        let permuted = self.permute(&perm)?;
        let rows: usize = row_modes.iter().map(|&m| self.shape.dim(m)).product();
        let cols: usize = col_modes.iter().map(|&m| self.shape.dim(m)).product();
        permuted.reshape([rows, cols])
    }

    /// In-place scale by a scalar.
    pub fn scale_mut(&mut self, s: T) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Scaled copy.
    pub fn scaled(&self, s: T) -> Self {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: T, other: &Self) -> Result<()> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch(format!(
                "axpy {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        for (x, &y) in self.data.iter_mut().zip(other.data.iter()) {
            *x += alpha * y;
        }
        crate::counter::add_flops(2 * self.data.len() as u64);
        Ok(())
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Self) -> Result<Self> {
        let mut out = self.clone();
        out.axpy(T::one(), other)?;
        Ok(out)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        let mut out = self.clone();
        out.axpy(-T::one(), other)?;
        Ok(out)
    }

    /// Conjugated inner product `<self, other> = sum conj(self_i) * other_i`.
    pub fn dot(&self, other: &Self) -> Result<T> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch(format!(
                "dot {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        crate::counter::add_flops(2 * self.data.len() as u64);
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a.conj() * b)
            .sum())
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x.abs2()).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x.abs2()).sum::<f64>()
    }

    /// Largest modulus entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|x| x.conj()).collect(),
        }
    }

    /// Maximum absolute elementwise difference (shape-checked).
    pub fn max_diff(&self, other: &Self) -> Result<f64> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch(format!(
                "max_diff {:?} vs {:?}",
                self.shape, other.shape
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Approximate equality within absolute tolerance `tol`.
    pub fn allclose(&self, other: &Self, tol: f64) -> bool {
        self.shape == other.shape && self.max_diff(other).unwrap() <= tol
    }
}

impl DenseTensor<f64> {
    /// Promote to a complex tensor (imaginary parts zero).
    pub fn to_complex(&self) -> DenseTensor<crate::Complex64> {
        DenseTensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .map(|&x| crate::Complex64::new(x, 0.0))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_access() {
        let mut t = DenseTensor::<f64>::zeros([2, 3]);
        assert_eq!(t.len(), 6);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn from_fn_row_major() {
        let t = DenseTensor::<f64>::from_fn([2, 2], |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(t.data(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseTensor::<f64>::from_vec([2, 2], vec![1.0; 3]).is_err());
        assert!(DenseTensor::<f64>::from_vec([2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let i = DenseTensor::<f64>::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn axpy_and_norms() {
        let a = DenseTensor::<f64>::from_vec([3], vec![1.0, 2.0, 2.0]).unwrap();
        let mut b = DenseTensor::<f64>::zeros([3]);
        b.axpy(2.0, &a).unwrap();
        assert_eq!(b.data(), &[2.0, 4.0, 4.0]);
        assert_eq!(a.norm(), 3.0);
        assert_eq!(a.norm2(), 9.0);
        assert_eq!(a.max_abs(), 2.0);
    }

    #[test]
    fn dot_conjugates_left() {
        use crate::Complex64 as C;
        let a = DenseTensor::from_vec([2], vec![C::new(0.0, 1.0), C::new(1.0, 0.0)]).unwrap();
        let d = a.dot(&a).unwrap();
        assert!((d - C::new(2.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = DenseTensor::<f64>::from_fn([2, 3], |i| (i[0] * 3 + i[1]) as f64);
        let r = t.clone().reshape([3, 2]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.clone().reshape([4, 2]).is_err());
    }

    #[test]
    fn matricize_groups_modes() {
        // t[i,j,k] with dims 2,3,4 -> rows (k,i) cols (j)
        let t = DenseTensor::<f64>::from_fn([2, 3, 4], |i| (i[0] * 100 + i[1] * 10 + i[2]) as f64);
        let m = t.matricize(&[2, 0], &[1]).unwrap();
        assert_eq!(m.dims(), &[8, 3]);
        // element (k=3,i=1),(j=2) == t[1,2,3]
        assert_eq!(m.at(&[3 * 2 + 1, 2]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn random_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = DenseTensor::<f64>::random([4, 4], &mut rng);
        assert!(t.data().iter().all(|&x| (-1.0..1.0).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(42);
        let t2 = DenseTensor::<f64>::random([4, 4], &mut rng2);
        assert_eq!(t.data(), t2.data());
    }

    #[test]
    fn allclose_tolerance() {
        let a = DenseTensor::<f64>::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = DenseTensor::<f64>::from_vec([2], vec![1.0 + 1e-12, 2.0]).unwrap();
        assert!(a.allclose(&b, 1e-10));
        assert!(!a.allclose(&b, 1e-14));
        let c = DenseTensor::<f64>::from_vec([1, 2], vec![1.0, 2.0]).unwrap();
        assert!(!a.allclose(&c, 1.0)); // different shape
    }

    #[test]
    fn scalar_tensor() {
        let s = DenseTensor::<f64>::scalar(3.5);
        assert_eq!(s.order(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.at(&[]), 3.5);
    }
}

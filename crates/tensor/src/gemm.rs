//! Packed, register-tiled matrix multiplication — the BLAS stand-in.
//!
//! Every tensor contraction in the workspace bottoms out here (the paper's
//! "GEMM/MKL" time category in Fig. 7). The kernel follows the BLIS
//! decomposition: `B` is packed once into `KC`-deep panels of `NR`-wide
//! column strips, `A` is packed per `MC × KC` block into `MR`-tall
//! micro-panels, and an unrolled `MR × NR` register-tiled microkernel does
//! all the flops.
//!
//! The packed path stores operands as *planes* of `f64`: a real plane
//! always, plus an imaginary plane when the element type is complex. The
//! microkernel itself is `f64`-only and compiled in several
//! `#[target_feature]` variants selected at runtime
//! ([`crate::simd::simd_level`]); `Complex64` multiplies run as four plane
//! passes over the same microkernel (`re += ar·br`, `re -= ai·bi`,
//! `im += ar·bi`, `im += ai·br`) instead of falling back to scalar complex
//! arithmetic.
//!
//! Three execution paths exist, chosen by [`gemm_path`] from `(k, n)`
//! **only** — never from `m`. Row-disjoint chunks of the same multiply must
//! take the same path so threaded row-partitioned execution stays
//! bitwise-identical to sequential execution (the `tt-dist` contract):
//!
//! * `n == 1` — a GEMV loop (the Davidson matvec shape),
//! * small `k·n` — a plain `(i,l,j)` scalar loop; packing overhead would
//!   dominate on the many tiny blocks of block-sparse DMRG,
//! * otherwise — the packed microkernel.
//!
//! Transposed operands are handled during packing / via strided loads
//! ([`Layout::Transposed`] no longer materializes a transposed copy).
//! Flops are charged to the global counter ([`crate::counter`]) as
//! `2·m·n·k` by the public entry points.

use crate::dense::DenseTensor;
use crate::scalar::Scalar;
use crate::simd::{simd_level, SimdLevel};
use crate::{Error, Result};
use std::marker::PhantomData;

/// Operand layout marker (row-major is native; `Transposed` reads the
/// operand through swapped strides — no copy is made).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Use the operand as stored.
    Normal,
    /// Use the (conjugate-free) transpose of the operand.
    Transposed,
}

/// Microkernel tile rows (register blocking).
pub const MR: usize = 2;
/// Microkernel tile columns (register blocking). The `2 × 16` `f64`
/// accumulator tile occupies 8 of the 16 AVX2 vector registers, leaving
/// room for the `A` broadcasts and `B` strip loads (a `4 × 16` tile
/// measures ~20% slower: all 16 registers go to accumulators and the
/// loads spill).
pub const NR: usize = 16;
/// Row-panel height: `A` is packed `MC × KC` at a time. Row-parallel
/// callers should align chunk boundaries to `MC` so every chunking packs
/// identical panels. Multiple of [`MR`].
pub const MC: usize = 128;
/// Depth of one packed panel (the `k`-blocking). Sized so an `MC × KC`
/// `f64` A-block (~256 KiB) stays L2-resident.
pub const KC: usize = 256;

/// Below this `k·n` the scalar loop beats packing (threshold compares
/// only chunking-invariant dims, keeping the path choice row-independent).
const PACK_MIN_KN: usize = 2048;

/// Which kernel a `(k, n)` multiply runs through. Deliberately independent
/// of `m`: row-chunked parallel execution must agree with sequential.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// Fused output width 1: matrix–vector product.
    Gemv,
    /// Small problem: plain scalar loop, no packing.
    Scalar,
    /// Packed panels + register-tiled microkernel.
    Packed,
}

/// Choose the execution path for a multiply with contracted dim `k` and
/// output width `n`.
pub fn gemm_path(k: usize, n: usize) -> GemmPath {
    if n == 1 {
        GemmPath::Gemv
    } else if k * n < PACK_MIN_KN {
        GemmPath::Scalar
    } else {
        GemmPath::Packed
    }
}

// ---------------------------------------------------------------------------
// packing
// ---------------------------------------------------------------------------

/// One `KC`-deep block of a packed `B`, produced by [`PackedB::pack_block`]
/// so callers with a thread pool can pack blocks concurrently and assemble
/// them with [`PackedB::from_blocks`]. Plane layout matches [`PackedB`].
pub struct PackedBlock {
    re: Vec<f64>,
    im: Vec<f64>,
}

/// `B` packed for the microkernel: for each `KC`-deep row block (in
/// ascending `k` order), `NR`-wide column strips stored contiguously, each
/// strip row-major `kc × NR` with zero-padding in the last partial strip.
///
/// Storage is plane-split `f64`: the real parts of every element in packing
/// order, plus (for complex `T` only) the imaginary parts in the same
/// order. The split is what lets the `f64` SIMD microkernel run complex
/// multiplies as four real plane passes.
pub struct PackedB<T: Scalar> {
    re: Vec<f64>,
    im: Vec<f64>,
    k: usize,
    n: usize,
    _elem: PhantomData<T>,
}

impl<T: Scalar> PackedB<T> {
    /// Pack an effective `k × n` matrix whose element `(l, j)` lives at
    /// `b[l*rs + j*cs]` (so `rs = n, cs = 1` for a row-major `B` and
    /// `rs = 1, cs = k_storage` reads a stored matrix transposed).
    pub fn pack(k: usize, n: usize, b: &[T], rs: usize, cs: usize) -> Self {
        let blocks = (0..Self::block_count(k))
            .map(|blk| Self::pack_block(k, n, b, rs, cs, blk))
            .collect();
        Self::from_blocks(k, n, blocks)
    }

    /// Number of `KC`-deep blocks a depth-`k` packing consists of — the
    /// unit of work for parallel packing.
    pub fn block_count(k: usize) -> usize {
        k.div_ceil(KC).max(1)
    }

    /// Pack the single `KC`-deep block `blk` (covering packed rows
    /// `[blk·KC, min((blk+1)·KC, k))`). Blocks are independent; packing
    /// them on separate threads and assembling with [`Self::from_blocks`]
    /// yields the same bytes as [`Self::pack`].
    pub fn pack_block(
        k: usize,
        n: usize,
        b: &[T],
        rs: usize,
        cs: usize,
        blk: usize,
    ) -> PackedBlock {
        let strips = n.div_ceil(NR);
        let pc = blk * KC;
        let kc = (pc + KC).min(k).saturating_sub(pc);
        let complex = T::is_complex();
        let mut re = Vec::with_capacity(kc * strips * NR);
        let mut im = Vec::with_capacity(if complex { kc * strips * NR } else { 0 });
        for strip in 0..strips {
            let j0 = strip * NR;
            for l in 0..kc {
                let row = (pc + l) * rs;
                for c in 0..NR {
                    let j = j0 + c;
                    let v = if j < n { b[row + j * cs] } else { T::zero() };
                    re.push(v.real());
                    if complex {
                        im.push(v.imag());
                    }
                }
            }
        }
        PackedBlock { re, im }
    }

    /// Assemble a packing from per-block pieces (must be every block of
    /// `Self::block_count(k)`, in ascending block order).
    pub fn from_blocks(k: usize, n: usize, blocks: Vec<PackedBlock>) -> Self {
        debug_assert_eq!(blocks.len(), Self::block_count(k));
        let strips = n.div_ceil(NR);
        let mut re = Vec::with_capacity(k * strips * NR);
        let mut im = Vec::new();
        for blk in blocks {
            re.extend_from_slice(&blk.re);
            im.extend_from_slice(&blk.im);
        }
        Self {
            re,
            im,
            k,
            n,
            _elem: PhantomData,
        }
    }

    /// Contracted dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Real plane of the `kc × NR` strip for k-block starting at `pc` and
    /// column strip `strip`.
    #[inline]
    fn strip_re(&self, pc: usize, kc: usize, strip: usize) -> &[f64] {
        let strips = self.n.div_ceil(NR);
        let off = pc * strips * NR + strip * kc * NR;
        &self.re[off..off + kc * NR]
    }

    /// Imaginary plane of the same strip (complex packings only).
    #[inline]
    fn strip_im(&self, pc: usize, kc: usize, strip: usize) -> &[f64] {
        let strips = self.n.div_ceil(NR);
        let off = pc * strips * NR + strip * kc * NR;
        &self.im[off..off + kc * NR]
    }
}

/// Pack rows `[i0, i0+rows)` × cols `[p0, p0+kc)` of an effective matrix
/// (element `(i, l)` at `a[i*rs + l*cs]`) into `MR`-tall micro-panels:
/// panel-major, then `l`-major, then the `MR` rows (zero-padded) — split
/// into `f64` planes (`im` is filled only for complex `T`).
#[allow(clippy::too_many_arguments)]
fn pack_a_block<T: Scalar>(
    re: &mut Vec<f64>,
    im: &mut Vec<f64>,
    a: &[T],
    rs: usize,
    cs: usize,
    i0: usize,
    rows: usize,
    p0: usize,
    kc: usize,
) {
    re.clear();
    im.clear();
    let complex = T::is_complex();
    for ip in 0..rows.div_ceil(MR) {
        for l in 0..kc {
            let col = (p0 + l) * cs;
            for r in 0..MR {
                let row = ip * MR + r;
                let v = if row < rows {
                    a[(i0 + row) * rs + col]
                } else {
                    T::zero()
                };
                re.push(v.real());
                if complex {
                    im.push(v.imag());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// microkernel variants + dispatch
// ---------------------------------------------------------------------------

/// The register-tiled `MR × NR` microkernel body: `acc ±= Ap · Bp` over a
/// `kc`-deep packed micro-panel pair (`SUB` selects the subtracting form,
/// used for the `re -= ai·bi` pass of complex multiplies).
///
/// The accumulator tile is copied into a local `regs` array for the loop
/// and written back once at the end. The copy is load-bearing: operating
/// through the `&mut` reference directly defeats LLVM's scalar-replacement
/// pass in some inlining contexts and the whole tile silently scalarizes
/// (measured 5× slower); the local array is reliably promoted to vector
/// registers.
///
/// `f64`-only by design: complex data reaches this kernel as split
/// real/imaginary planes. There is no FMA contraction (rustc never fuses
/// `mul`+`add` without explicit intrinsics), so every `#[target_feature]`
/// wrapper below computes bitwise-identical values — the feature gates
/// change only how wide the independent accumulator lanes are vectorized.
#[inline(always)]
fn microkernel_body<const SUB: bool>(kc: usize, ap: &[f64], bp: &[f64], acc: &mut [[f64; NR]; MR]) {
    let mut regs = *acc;
    for l in 0..kc {
        let av: &[f64; MR] = ap[l * MR..l * MR + MR].try_into().expect("MR panel");
        let bv: &[f64; NR] = bp[l * NR..l * NR + NR].try_into().expect("NR strip");
        for (regr, &ar) in regs.iter_mut().zip(av.iter()) {
            for (regv, &bc) in regr.iter_mut().zip(bv.iter()) {
                if SUB {
                    *regv -= ar * bc;
                } else {
                    *regv += ar * bc;
                }
            }
        }
    }
    *acc = regs;
}

/// Baseline variant: ambient codegen flags only. `unsafe fn` purely for
/// signature uniformity with the feature-gated variants (callable safely
/// on any CPU).
unsafe fn microkernel_baseline<const SUB: bool>(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    acc: &mut [[f64; NR]; MR],
) {
    microkernel_body::<SUB>(kc, ap, bp, acc);
}

/// AVX2+FMA variant. Safety: caller must have verified `avx2` and `fma`
/// via feature detection (see [`crate::simd`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2<const SUB: bool>(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    acc: &mut [[f64; NR]; MR],
) {
    microkernel_body::<SUB>(kc, ap, bp, acc);
}

/// AVX-512 variant (opt-in via `TT_SIMD=avx512`). Safety: caller must have
/// verified `avx512f`/`avx512vl`/`avx512dq` via feature detection.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,avx512dq")]
unsafe fn microkernel_avx512<const SUB: bool>(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    acc: &mut [[f64; NR]; MR],
) {
    microkernel_body::<SUB>(kc, ap, bp, acc);
}

type MicroFn = unsafe fn(usize, &[f64], &[f64], &mut [[f64; NR]; MR]);

/// The adding and subtracting microkernel entry points for one SIMD level.
#[derive(Copy, Clone)]
struct MicroKernel {
    add: MicroFn,
    sub: MicroFn,
}

fn micro_kernel_for(level: SimdLevel) -> MicroKernel {
    match level {
        SimdLevel::Baseline => MicroKernel {
            add: microkernel_baseline::<false>,
            sub: microkernel_baseline::<true>,
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => MicroKernel {
            add: microkernel_avx2::<false>,
            sub: microkernel_avx2::<true>,
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => MicroKernel {
            add: microkernel_avx512::<false>,
            sub: microkernel_avx512::<true>,
        },
        // simd_level() never reports AVX levels off x86_64, but keep the
        // match total for any direct caller
        #[cfg(not(target_arch = "x86_64"))]
        _ => MicroKernel {
            add: microkernel_baseline::<false>,
            sub: microkernel_baseline::<true>,
        },
    }
}

/// Packed-path macro kernel for output rows `[i0, i1)`: packs `A` blocks on
/// the fly and drives the microkernel against a pre-packed `B`. `c` holds
/// only rows `[i0, i1)`, row-major with leading dimension `pb.n()`.
///
/// Per output element the accumulation order is: ascending `KC`-block, one
/// register-summed partial per block — independent of how rows were split
/// across calls, which is what keeps threaded execution bitwise equal to
/// sequential. Complex elements take four plane passes per tile
/// (`re += ar·br`, `re -= ai·bi`, `im += ar·bi`, `im += ai·br`) and write
/// back one complex partial per `KC` block.
fn packed_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    pb: &PackedB<T>,
    c: &mut [T],
) {
    let mk = micro_kernel_for(simd_level());
    let (k, n) = (pb.k, pb.n);
    let strips = n.div_ceil(NR);
    let complex = T::is_complex();
    let mut apack_re: Vec<f64> = Vec::with_capacity(MC * KC);
    let mut apack_im: Vec<f64> = Vec::with_capacity(if complex { MC * KC } else { 0 });
    for ic in (i0..i1).step_by(MC) {
        let rows = (ic + MC).min(i1) - ic;
        for pc in (0..k).step_by(KC) {
            let kc = (pc + KC).min(k) - pc;
            pack_a_block(
                &mut apack_re,
                &mut apack_im,
                a,
                a_rs,
                a_cs,
                ic,
                rows,
                pc,
                kc,
            );
            for s in 0..strips {
                let j0 = s * NR;
                let ncols = NR.min(n - j0);
                let bp_re = pb.strip_re(pc, kc, s);
                for ip in 0..rows.div_ceil(MR) {
                    let panel = ip * MR * kc..(ip + 1) * MR * kc;
                    let ap_re = &apack_re[panel.clone()];
                    let mut acc_re = [[0.0f64; NR]; MR];
                    let mut acc_im = [[0.0f64; NR]; MR];
                    // SAFETY: `mk` was selected by `simd_level()`, which
                    // only reports levels whose features were detected.
                    unsafe {
                        (mk.add)(kc, ap_re, bp_re, &mut acc_re);
                        if complex {
                            let bp_im = pb.strip_im(pc, kc, s);
                            let ap_im = &apack_im[panel];
                            (mk.sub)(kc, ap_im, bp_im, &mut acc_re);
                            (mk.add)(kc, ap_re, bp_im, &mut acc_im);
                            (mk.add)(kc, ap_im, bp_re, &mut acc_im);
                        }
                    }
                    let rmax = MR.min(rows - ip * MR);
                    for r in 0..rmax {
                        let crow0 = (ic - i0 + ip * MR + r) * n + j0;
                        for (j, cj) in c[crow0..crow0 + ncols].iter_mut().enumerate() {
                            *cj += T::from_re_im(acc_re[r][j], acc_im[r][j]);
                        }
                    }
                }
            }
        }
    }
}

/// Scalar-path kernel for output rows `[i0, i1)`: plain `(i, l, j)` loop
/// with per-element ascending-`l` accumulation (chunking-invariant). `c`
/// holds only rows `[i0, i1)`.
#[allow(clippy::too_many_arguments)]
fn scalar_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    b: &[T],
    b_rs: usize,
    b_cs: usize,
    c: &mut [T],
) {
    for i in i0..i1 {
        let crow = &mut c[(i - i0) * n..(i - i0) * n + n];
        for l in 0..k {
            let ail = a[i * a_rs + l * a_cs];
            if b_cs == 1 {
                let brow = &b[l * b_rs..l * b_rs + n];
                for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                    *cj += ail * bj;
                }
            } else {
                for (j, cj) in crow.iter_mut().enumerate() {
                    *cj += ail * b[l * b_rs + j * b_cs];
                }
            }
        }
    }
}

/// GEMV-path kernel (`n == 1`) for output rows `[i0, i1)`: one dot product
/// per row, register-accumulated then added once to `c`.
#[allow(clippy::too_many_arguments)]
fn gemv_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    k: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    b: &[T],
    b_rs: usize,
    c: &mut [T],
) {
    for i in i0..i1 {
        let mut acc = T::zero();
        if a_cs == 1 {
            let arow = &a[i * a_rs..i * a_rs + k];
            if b_rs == 1 {
                for (&ail, &bl) in arow.iter().zip(b.iter()) {
                    acc += ail * bl;
                }
            } else {
                for (l, &ail) in arow.iter().enumerate() {
                    acc += ail * b[l * b_rs];
                }
            }
        } else {
            for l in 0..k {
                acc += a[i * a_rs + l * a_cs] * b[l * b_rs];
            }
        }
        c[i - i0] += acc;
    }
}

// ---------------------------------------------------------------------------
// public entry points
// ---------------------------------------------------------------------------

/// `C = A · B` for row-major matrices given as flat slices.
///
/// `a` is `m×k`, `b` is `k×n`, `c` (output, overwritten) is `m×n`.
pub fn gemm_slices<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for x in c.iter_mut() {
        *x = T::zero();
    }
    gemm_acc_slices(m, k, n, a, b, c);
}

/// `C += A · B` for row-major flat slices (accumulating form).
pub fn gemm_acc_slices<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    crate::counter::add_flops(2 * (m as u64) * (n as u64) * (k as u64));
    if m == 0 || n == 0 {
        return;
    }
    match gemm_path(k, n) {
        GemmPath::Gemv => gemv_rows(0, m, k, a, k, 1, b, n, c),
        GemmPath::Scalar => scalar_rows(0, m, k, n, a, k, 1, b, n, 1, c),
        GemmPath::Packed => {
            let pb = PackedB::pack(k, n, b, n, 1);
            packed_rows(0, m, a, k, 1, &pb, c);
        }
    }
}

/// `C[i0..i1, :] += A[i0..i1, :] · B` against a pre-packed `B` — the
/// row-panel entry point parallel callers fan out over a thread pool.
/// `i0` should be [`MC`]-aligned so every chunking packs identical `A`
/// panels; `a` is the full effective matrix viewed through strides
/// `(a_rs, a_cs)`; `c` holds only rows `[i0, i1)`.
pub fn gemm_acc_packed_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    pb: &PackedB<T>,
    c: &mut [T],
) {
    crate::counter::add_flops(2 * ((i1 - i0) as u64) * (pb.n as u64) * (pb.k as u64));
    packed_rows(i0, i1, a, a_rs, a_cs, pb, c);
}

/// `y[i0..i1] += A[i0..i1, :] · b` — the `n == 1` row-panel entry point
/// (Davidson matvec shape). `b`'s element `l` lives at `b[l*b_rs]`.
#[allow(clippy::too_many_arguments)]
pub fn gemv_acc_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    k: usize,
    a: &[T],
    b: &[T],
    b_rs: usize,
    c: &mut [T],
) {
    crate::counter::add_flops(2 * ((i1 - i0) as u64) * (k as u64));
    gemv_rows(i0, i1, k, a, k, 1, b, b_rs, c);
}

/// General matrix multiply on [`DenseTensor`] matrices with optional
/// transposition of either operand: `C = op(A) · op(B)`.
///
/// Transposed operands are read through swapped strides during packing —
/// no transposed copy is materialized.
pub fn gemm<T: Scalar>(
    a: &DenseTensor<T>,
    la: Layout,
    b: &DenseTensor<T>,
    lb: Layout,
) -> Result<DenseTensor<T>> {
    if a.order() != 2 || b.order() != 2 {
        return Err(Error::ShapeMismatch(format!(
            "gemm wants matrices, got orders {} and {}",
            a.order(),
            b.order()
        )));
    }
    // effective dims and strides: element (i, l) of op(A) at a[i*rs + l*cs]
    let (m, ka, a_rs, a_cs) = match la {
        Layout::Normal => (a.dims()[0], a.dims()[1], a.dims()[1], 1),
        Layout::Transposed => (a.dims()[1], a.dims()[0], 1, a.dims()[1]),
    };
    let (kb, n, b_rs, b_cs) = match lb {
        Layout::Normal => (b.dims()[0], b.dims()[1], b.dims()[1], 1),
        Layout::Transposed => (b.dims()[1], b.dims()[0], 1, b.dims()[1]),
    };
    if ka != kb {
        return Err(Error::ShapeMismatch(format!(
            "gemm inner dims {ka} != {kb}"
        )));
    }
    crate::counter::add_flops(2 * (m as u64) * (n as u64) * (ka as u64));
    let mut c = DenseTensor::zeros([m, n]);
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    match gemm_path(ka, n) {
        GemmPath::Gemv => gemv_rows(0, m, ka, ad, a_rs, a_cs, bd, b_rs, cd),
        GemmPath::Scalar => scalar_rows(0, m, ka, n, ad, a_rs, a_cs, bd, b_rs, b_cs, cd),
        GemmPath::Packed => {
            let pb = PackedB::pack(ka, n, bd, b_rs, b_cs);
            packed_rows(0, m, ad, a_rs, a_cs, &pb, cd);
        }
    }
    Ok(c)
}

/// Convenience: `C = A · B` for `f64` matrices.
pub fn gemm_f64(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> Result<DenseTensor<f64>> {
    gemm(a, Layout::Normal, b, Layout::Normal)
}

/// Matrix–vector product `y = A·x` (row-major `m×n` times length-`n`).
pub fn gemv<T: Scalar>(a: &DenseTensor<T>, x: &[T]) -> Result<Vec<T>> {
    if a.order() != 2 {
        return Err(Error::ShapeMismatch("gemv wants a matrix".into()));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n {
        return Err(Error::ShapeMismatch(format!(
            "gemv dims {n} vs vector {}",
            x.len()
        )));
    }
    crate::counter::add_flops(2 * (m as u64) * (n as u64));
    let mut y = vec![T::zero(); m];
    gemv_rows(0, m, n, a.data(), n, 1, x, 1, &mut y);
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> DenseTensor<f64> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = DenseTensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    #[test]
    fn small_exact() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseTensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_f64(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_neutral() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseTensor::<f64>::random([5, 5], &mut rng);
        let i = DenseTensor::<f64>::eye(5);
        assert!(gemm_f64(&a, &i).unwrap().allclose(&a, 1e-14));
        assert!(gemm_f64(&i, &a).unwrap().allclose(&a, 1e-14));
    }

    #[test]
    fn blocked_matches_naive_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        // shapes straddling the scalar/packed threshold and the MR/NR/MC/KC
        // tile edges, including k > KC (multi-panel accumulation)
        for (m, k, n) in [
            (1, 1, 1),
            (3, 7, 5),
            (65, 129, 33),
            (70, 40, 90),
            (5, 300, 33),
            (130, 260, 17),
            (4, 8, 2048),
        ] {
            let a = DenseTensor::<f64>::random([m, k], &mut rng);
            let b = DenseTensor::<f64>::random([k, n], &mut rng);
            let c = gemm_f64(&a, &b).unwrap();
            assert!(c.allclose(&naive(&a, &b), 1e-11), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn transposed_layouts() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseTensor::<f64>::random([4, 6], &mut rng);
        let b = DenseTensor::<f64>::random([4, 3], &mut rng);
        // A^T (6x4) * B (4x3)
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        let at = a.permute(&[1, 0]).unwrap();
        assert!(c.allclose(&naive(&at, &b), 1e-12));
        // B^T (3x4) * A (4x6)
        let d = gemm(&b, Layout::Transposed, &a, Layout::Normal).unwrap();
        let bt = b.permute(&[1, 0]).unwrap();
        assert!(d.allclose(&naive(&bt, &a), 1e-12));
    }

    #[test]
    fn transposed_layouts_packed_path() {
        // large enough that gemm_path picks Packed: transposes must be
        // handled during packing, for every layout combination
        let mut rng = StdRng::seed_from_u64(51);
        let a = DenseTensor::<f64>::random([67, 41], &mut rng);
        let b = DenseTensor::<f64>::random([67, 63], &mut rng);
        assert_eq!(gemm_path(67, 63), GemmPath::Packed);
        let at = a.permute(&[1, 0]).unwrap();
        let bt = b.permute(&[1, 0]).unwrap();
        // Aᵀ·B
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        assert!(c.allclose(&naive(&at, &b), 1e-11));
        // Aᵀ·(Bᵀ)ᵀ — pass the materialized Bᵀ as Transposed
        let d = gemm(&a, Layout::Transposed, &bt, Layout::Transposed).unwrap();
        assert!(d.allclose(&naive(&at, &b), 1e-11));
        // A·B via both-normal on the same shapes
        let e = gemm(&at, Layout::Normal, &b, Layout::Normal).unwrap();
        assert!(e.allclose(&naive(&at, &b), 1e-11));
    }

    #[test]
    fn packed_rows_chunking_is_bitwise_invariant() {
        // the row-panel entry point must give bit-identical results no
        // matter how rows are split at MC boundaries
        let mut rng = StdRng::seed_from_u64(52);
        let (m, k, n) = (3 * MC + 17, 300, 70);
        let a = DenseTensor::<f64>::random([m, k], &mut rng);
        let b = DenseTensor::<f64>::random([k, n], &mut rng);
        let mut whole = vec![0.0; m * n];
        gemm_acc_slices(m, k, n, a.data(), b.data(), &mut whole);
        let pb = PackedB::pack(k, n, b.data(), n, 1);
        let mut chunked = Vec::with_capacity(m * n);
        for r0 in (0..m).step_by(MC) {
            let r1 = (r0 + MC).min(m);
            let mut part = vec![0.0; (r1 - r0) * n];
            gemm_acc_packed_rows(r0, r1, a.data(), k, 1, &pb, &mut part);
            chunked.extend_from_slice(&part);
        }
        assert_eq!(whole, chunked, "row chunking changed bits");
    }

    #[test]
    fn complex_packed_rows_chunking_is_bitwise_invariant() {
        // same contract for the four-pass complex plane path
        use crate::Complex64 as C;
        let mut rng = StdRng::seed_from_u64(57);
        let (m, k, n) = (2 * MC + 5, 280, 40);
        let a = DenseTensor::<C>::random([m, k], &mut rng);
        let b = DenseTensor::<C>::random([k, n], &mut rng);
        let mut whole = vec![C::zero(); m * n];
        gemm_acc_slices(m, k, n, a.data(), b.data(), &mut whole);
        let pb = PackedB::pack(k, n, b.data(), n, 1);
        let mut chunked = Vec::with_capacity(m * n);
        for r0 in (0..m).step_by(MC) {
            let r1 = (r0 + MC).min(m);
            let mut part = vec![C::zero(); (r1 - r0) * n];
            gemm_acc_packed_rows(r0, r1, a.data(), k, 1, &pb, &mut part);
            chunked.extend_from_slice(&part);
        }
        assert_eq!(whole, chunked, "complex row chunking changed bits");
    }

    #[test]
    fn block_packing_matches_monolithic() {
        // parallel per-block packing must assemble to the same planes
        use crate::Complex64 as C;
        let mut rng = StdRng::seed_from_u64(58);
        let (k, n) = (3 * KC + 31, 45);
        let b = DenseTensor::<f64>::random([k, n], &mut rng);
        let whole = PackedB::pack(k, n, b.data(), n, 1);
        let blocks = (0..PackedB::<f64>::block_count(k))
            .map(|blk| PackedB::<f64>::pack_block(k, n, b.data(), n, 1, blk))
            .collect();
        let assembled = PackedB::<f64>::from_blocks(k, n, blocks);
        assert_eq!(whole.re, assembled.re);
        let bc = DenseTensor::<C>::random([k, n], &mut rng);
        let wc = PackedB::pack(k, n, bc.data(), n, 1);
        let blocks = (0..PackedB::<C>::block_count(k))
            .map(|blk| PackedB::<C>::pack_block(k, n, bc.data(), n, 1, blk))
            .collect();
        let ac = PackedB::<C>::from_blocks(k, n, blocks);
        assert_eq!(wc.re, ac.re);
        assert_eq!(wc.im, ac.im);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn microkernel_variants_agree_bitwise() {
        // the determinism contract is per-variant, but the variants are in
        // fact bitwise identical (no FMA contraction, fixed order) — lock
        // that in so a silent codegen change is caught
        let mut rng = StdRng::seed_from_u64(59);
        let kc = 173;
        let ap = DenseTensor::<f64>::random([kc * MR, 1], &mut rng);
        let bp = DenseTensor::<f64>::random([kc * NR, 1], &mut rng);
        let mut base = [[0.25f64; NR]; MR];
        unsafe { microkernel_baseline::<false>(kc, ap.data(), bp.data(), &mut base) };
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            let mut v2 = [[0.25f64; NR]; MR];
            unsafe { microkernel_avx2::<false>(kc, ap.data(), bp.data(), &mut v2) };
            assert_eq!(base, v2, "avx2 variant diverged from baseline");
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("avx512dq")
        {
            let mut v5 = [[0.25f64; NR]; MR];
            unsafe { microkernel_avx512::<false>(kc, ap.data(), bp.data(), &mut v5) };
            assert_eq!(base, v5, "avx512 variant diverged from baseline");
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = DenseTensor::<f64>::zeros([2, 3]);
        let b = DenseTensor::<f64>::zeros([4, 2]);
        assert!(gemm_f64(&a, &b).is_err());
    }

    #[test]
    fn counts_flops() {
        let a = DenseTensor::<f64>::zeros([8, 4]);
        let b = DenseTensor::<f64>::zeros([4, 16]);
        let g = counter::FlopGuard::start();
        gemm_f64(&a, &b).unwrap();
        assert_eq!(g.elapsed(), 2 * 8 * 4 * 16);
    }

    #[test]
    fn complex_gemm() {
        use crate::Complex64 as C;
        let a = DenseTensor::from_vec([1, 2], vec![C::new(0.0, 1.0), C::new(1.0, 0.0)]).unwrap();
        let b = DenseTensor::from_vec([2, 1], vec![C::new(0.0, 1.0), C::new(2.0, 0.0)]).unwrap();
        let c = gemm(&a, Layout::Normal, &b, Layout::Normal).unwrap();
        // i*i + 1*2 = -1 + 2 = 1
        assert!((c.at(&[0, 0]) - C::new(1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn complex_gemm_packed_path() {
        use crate::Complex64 as C;
        let mut rng = StdRng::seed_from_u64(53);
        let a = DenseTensor::<C>::random([19, 80], &mut rng);
        let b = DenseTensor::<C>::random([19, 40], &mut rng);
        assert_eq!(gemm_path(19, 40), GemmPath::Scalar);
        assert_eq!(gemm_path(80, 40), GemmPath::Packed);
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        // reference via the naive loop on materialized Aᵀ
        let at = a.permute(&[1, 0]).unwrap();
        let mut max = 0.0f64;
        for i in 0..80 {
            for j in 0..40 {
                let mut s = C::new(0.0, 0.0);
                for l in 0..19 {
                    s += at.at(&[i, l]) * b.at(&[l, j]);
                }
                max = max.max((c.at(&[i, j]) - s).abs());
            }
        }
        assert!(max < 1e-11, "max dev {max}");
    }

    #[test]
    fn complex_packed_matches_naive_odd_sizes() {
        // plane-split complex kernel across tile edges, k > KC, padding
        use crate::Complex64 as C;
        let mut rng = StdRng::seed_from_u64(54);
        for (m, k, n) in [(3, 130, 17), (65, 300, 33), (130, 2 * KC + 9, 18)] {
            let a = DenseTensor::<C>::random([m, k], &mut rng);
            let b = DenseTensor::<C>::random([k, n], &mut rng);
            let c = gemm(&a, Layout::Normal, &b, Layout::Normal).unwrap();
            let mut max = 0.0f64;
            for i in 0..m {
                for j in 0..n {
                    let mut s = C::new(0.0, 0.0);
                    for l in 0..k {
                        s += a.at(&[i, l]) * b.at(&[l, j]);
                    }
                    max = max.max((c.at(&[i, j]) - s).abs());
                }
            }
            assert!(max < 1e-10, "{m}x{k}x{n} max dev {max}");
        }
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = DenseTensor::<f64>::random([7, 9], &mut rng);
        let x = DenseTensor::<f64>::random([9, 1], &mut rng);
        let y = gemv(&a, x.data()).unwrap();
        let y2 = gemm_f64(&a, &x).unwrap();
        for (i, &yi) in y.iter().enumerate() {
            assert!((yi - y2.at(&[i, 0])).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_path_taken_for_width_one() {
        assert_eq!(gemm_path(5000, 1), GemmPath::Gemv);
        // and it agrees with the scalar reference
        let mut rng = StdRng::seed_from_u64(7);
        let a = DenseTensor::<f64>::random([33, 700], &mut rng);
        let x = DenseTensor::<f64>::random([700, 1], &mut rng);
        let y = gemm_f64(&a, &x).unwrap();
        assert!(y.allclose(&naive(&a, &x), 1e-10));
    }

    #[test]
    fn acc_form_accumulates() {
        // gemm_acc_slices must add into existing C on every path
        let mut rng = StdRng::seed_from_u64(8);
        for (k, n) in [(3, 4), (300, 33), (700, 1)] {
            let m = 6;
            let a = DenseTensor::<f64>::random([m, k], &mut rng);
            let b = DenseTensor::<f64>::random([k, n], &mut rng);
            let mut c = vec![1.0f64; m * n];
            gemm_acc_slices(m, k, n, a.data(), b.data(), &mut c);
            let reference = naive(&a, &b);
            for (i, &ci) in c.iter().enumerate() {
                assert!(
                    (ci - 1.0 - reference.data()[i]).abs() < 1e-10,
                    "path {:?}",
                    gemm_path(k, n)
                );
            }
        }
    }
}

//! Tiled, cache-blocked matrix multiplication — the BLAS stand-in.
//!
//! Every tensor contraction in the workspace bottoms out here (the paper's
//! "GEMM/MKL" time category in Fig. 7). The kernel uses classic
//! `(i,k,j)` loop ordering over cache blocks so the innermost loop streams
//! both `B` and `C` rows contiguously in row-major layout, which LLVM
//! autovectorizes. Flops are charged to the global counter
//! ([`crate::counter`]) as `2·m·n·k`.

use crate::dense::DenseTensor;
use crate::scalar::Scalar;
use crate::{Error, Result};

/// Operand layout marker (row-major is native; `Transposed` avoids an
/// explicit transpose for the common `Aᵀ·B` patterns).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Use the operand as stored.
    Normal,
    /// Use the (conjugate-free) transpose of the operand.
    Transposed,
}

/// Cache blocking parameters (elements). Sized for ~32 KiB L1 / 1 MiB L2.
const MC: usize = 64;
const KC: usize = 128;
const NC: usize = 512;

/// `C = A · B` for row-major matrices given as flat slices.
///
/// `a` is `m×k`, `b` is `k×n`, `c` (output, overwritten) is `m×n`.
pub fn gemm_slices<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for x in c.iter_mut() {
        *x = T::zero();
    }
    gemm_acc_slices(m, k, n, a, b, c);
}

/// `C += A · B` for row-major flat slices (accumulating form).
pub fn gemm_acc_slices<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    crate::counter::add_flops(2 * (m as u64) * (n as u64) * (k as u64));
    for ib in (0..m).step_by(MC) {
        let imax = (ib + MC).min(m);
        for kb in (0..k).step_by(KC) {
            let kmax = (kb + KC).min(k);
            for jb in (0..n).step_by(NC) {
                let jmax = (jb + NC).min(n);
                for i in ib..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + jb..i * n + jmax];
                    for kk in kb..kmax {
                        let aik = arow[kk];
                        let brow = &b[kk * n + jb..kk * n + jmax];
                        for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                            *cj += aik * bj;
                        }
                    }
                }
            }
        }
    }
}

/// General matrix multiply on [`DenseTensor`] matrices with optional
/// transposition of either operand: `C = op(A) · op(B)`.
pub fn gemm<T: Scalar>(
    a: &DenseTensor<T>,
    la: Layout,
    b: &DenseTensor<T>,
    lb: Layout,
) -> Result<DenseTensor<T>> {
    if a.order() != 2 || b.order() != 2 {
        return Err(Error::ShapeMismatch(format!(
            "gemm wants matrices, got orders {} and {}",
            a.order(),
            b.order()
        )));
    }
    // materialize transposes (TTGT style); cheap relative to the multiply
    let at;
    let a_eff = match la {
        Layout::Normal => a,
        Layout::Transposed => {
            at = a.permute(&[1, 0])?;
            &at
        }
    };
    let bt;
    let b_eff = match lb {
        Layout::Normal => b,
        Layout::Transposed => {
            bt = b.permute(&[1, 0])?;
            &bt
        }
    };
    let (m, ka) = (a_eff.dims()[0], a_eff.dims()[1]);
    let (kb, n) = (b_eff.dims()[0], b_eff.dims()[1]);
    if ka != kb {
        return Err(Error::ShapeMismatch(format!(
            "gemm inner dims {ka} != {kb}"
        )));
    }
    let mut c = DenseTensor::zeros([m, n]);
    gemm_acc_slices(m, ka, n, a_eff.data(), b_eff.data(), c.data_mut());
    Ok(c)
}

/// Convenience: `C = A · B` for `f64` matrices.
pub fn gemm_f64(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> Result<DenseTensor<f64>> {
    gemm(a, Layout::Normal, b, Layout::Normal)
}

/// Matrix–vector product `y = A·x` (row-major `m×n` times length-`n`).
pub fn gemv<T: Scalar>(a: &DenseTensor<T>, x: &[T]) -> Result<Vec<T>> {
    if a.order() != 2 {
        return Err(Error::ShapeMismatch("gemv wants a matrix".into()));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n {
        return Err(Error::ShapeMismatch(format!(
            "gemv dims {n} vs vector {}",
            x.len()
        )));
    }
    crate::counter::add_flops(2 * (m as u64) * (n as u64));
    let data = a.data();
    let mut y = vec![T::zero(); m];
    for i in 0..m {
        let row = &data[i * n..(i + 1) * n];
        let mut acc = T::zero();
        for (&aij, &xj) in row.iter().zip(x.iter()) {
            acc += aij * xj;
        }
        y[i] = acc;
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> DenseTensor<f64> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = DenseTensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    #[test]
    fn small_exact() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseTensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_f64(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_neutral() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseTensor::<f64>::random([5, 5], &mut rng);
        let i = DenseTensor::<f64>::eye(5);
        assert!(gemm_f64(&a, &i).unwrap().allclose(&a, 1e-14));
        assert!(gemm_f64(&i, &a).unwrap().allclose(&a, 1e-14));
    }

    #[test]
    fn blocked_matches_naive_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (65, 129, 33), (70, 40, 90)] {
            let a = DenseTensor::<f64>::random([m, k], &mut rng);
            let b = DenseTensor::<f64>::random([k, n], &mut rng);
            let c = gemm_f64(&a, &b).unwrap();
            assert!(c.allclose(&naive(&a, &b), 1e-11), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn transposed_layouts() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseTensor::<f64>::random([4, 6], &mut rng);
        let b = DenseTensor::<f64>::random([4, 3], &mut rng);
        // A^T (6x4) * B (4x3)
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        let at = a.permute(&[1, 0]).unwrap();
        assert!(c.allclose(&naive(&at, &b), 1e-12));
        // B^T (3x4) * A (4x6)
        let d = gemm(&b, Layout::Transposed, &a, Layout::Normal).unwrap();
        let bt = b.permute(&[1, 0]).unwrap();
        assert!(d.allclose(&naive(&bt, &a), 1e-12));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = DenseTensor::<f64>::zeros([2, 3]);
        let b = DenseTensor::<f64>::zeros([4, 2]);
        assert!(gemm_f64(&a, &b).is_err());
    }

    #[test]
    fn counts_flops() {
        let a = DenseTensor::<f64>::zeros([8, 4]);
        let b = DenseTensor::<f64>::zeros([4, 16]);
        let g = counter::FlopGuard::start();
        gemm_f64(&a, &b).unwrap();
        assert_eq!(g.elapsed(), 2 * 8 * 4 * 16);
    }

    #[test]
    fn complex_gemm() {
        use crate::Complex64 as C;
        let a = DenseTensor::from_vec([1, 2], vec![C::new(0.0, 1.0), C::new(1.0, 0.0)]).unwrap();
        let b =
            DenseTensor::from_vec([2, 1], vec![C::new(0.0, 1.0), C::new(2.0, 0.0)]).unwrap();
        let c = gemm(&a, Layout::Normal, &b, Layout::Normal).unwrap();
        // i*i + 1*2 = -1 + 2 = 1
        assert!((c.at(&[0, 0]) - C::new(1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = DenseTensor::<f64>::random([7, 9], &mut rng);
        let x = DenseTensor::<f64>::random([9, 1], &mut rng);
        let y = gemv(&a, x.data()).unwrap();
        let y2 = gemm_f64(&a, &x).unwrap();
        for (i, &yi) in y.iter().enumerate() {
            assert!((yi - y2.at(&[i, 0])).abs() < 1e-12);
        }
    }
}

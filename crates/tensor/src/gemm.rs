//! Packed, register-tiled matrix multiplication — the BLAS stand-in.
//!
//! Every tensor contraction in the workspace bottoms out here (the paper's
//! "GEMM/MKL" time category in Fig. 7). The kernel follows the BLIS
//! decomposition: `B` is packed once into `KC`-deep panels of `NR`-wide
//! column strips, `A` is packed per `MC × KC` block into `MR`-tall
//! micro-panels, and an unrolled `MR × NR` register-tiled microkernel does
//! all the flops. The microkernel is generic over [`Scalar`] — for `f64`
//! LLVM lowers the fixed-size accumulator to SIMD registers; `Complex64`
//! runs the same code as the scalar fallback path.
//!
//! Three execution paths exist, chosen by [`gemm_path`] from `(k, n)`
//! **only** — never from `m`. Row-disjoint chunks of the same multiply must
//! take the same path so threaded row-partitioned execution stays
//! bitwise-identical to sequential execution (the `tt-dist` contract):
//!
//! * `n == 1` — a GEMV loop (the Davidson matvec shape),
//! * small `k·n` — a plain `(i,l,j)` scalar loop; packing overhead would
//!   dominate on the many tiny blocks of block-sparse DMRG,
//! * otherwise — the packed microkernel.
//!
//! Transposed operands are handled during packing / via strided loads
//! ([`Layout::Transposed`] no longer materializes a transposed copy).
//! Flops are charged to the global counter ([`crate::counter`]) as
//! `2·m·n·k` by the public entry points.

use crate::dense::DenseTensor;
use crate::scalar::Scalar;
use crate::{Error, Result};

/// Operand layout marker (row-major is native; `Transposed` reads the
/// operand through swapped strides — no copy is made).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Use the operand as stored.
    Normal,
    /// Use the (conjugate-free) transpose of the operand.
    Transposed,
}

/// Microkernel tile rows (register blocking).
pub const MR: usize = 2;
/// Microkernel tile columns (register blocking). The `2 × 16` `f64`
/// accumulator tile occupies 8 of the 16 AVX2 vector registers, leaving
/// room for the `A` broadcasts and `B` strip loads (a `4 × 16` tile
/// measures ~20% slower: all 16 registers go to accumulators and the
/// loads spill).
pub const NR: usize = 16;
/// Row-panel height: `A` is packed `MC × KC` at a time. Row-parallel
/// callers should align chunk boundaries to `MC` so every chunking packs
/// identical panels. Multiple of [`MR`].
pub const MC: usize = 128;
/// Depth of one packed panel (the `k`-blocking). Sized so an `MC × KC`
/// `f64` A-block (~256 KiB) stays L2-resident.
pub const KC: usize = 256;

/// Below this `k·n` the scalar loop beats packing (threshold compares
/// only chunking-invariant dims, keeping the path choice row-independent).
const PACK_MIN_KN: usize = 2048;

/// Which kernel a `(k, n)` multiply runs through. Deliberately independent
/// of `m`: row-chunked parallel execution must agree with sequential.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GemmPath {
    /// Fused output width 1: matrix–vector product.
    Gemv,
    /// Small problem: plain scalar loop, no packing.
    Scalar,
    /// Packed panels + register-tiled microkernel.
    Packed,
}

/// Choose the execution path for a multiply with contracted dim `k` and
/// output width `n`.
pub fn gemm_path(k: usize, n: usize) -> GemmPath {
    if n == 1 {
        GemmPath::Gemv
    } else if k * n < PACK_MIN_KN {
        GemmPath::Scalar
    } else {
        GemmPath::Packed
    }
}

// ---------------------------------------------------------------------------
// packing
// ---------------------------------------------------------------------------

/// `B` packed for the microkernel: for each `KC`-deep row block (in
/// ascending `k` order), `NR`-wide column strips stored contiguously, each
/// strip row-major `kc × NR` with zero-padding in the last partial strip.
pub struct PackedB<T: Scalar> {
    data: Vec<T>,
    k: usize,
    n: usize,
}

impl<T: Scalar> PackedB<T> {
    /// Pack an effective `k × n` matrix whose element `(l, j)` lives at
    /// `b[l*rs + j*cs]` (so `rs = n, cs = 1` for a row-major `B` and
    /// `rs = 1, cs = k_storage` reads a stored matrix transposed).
    pub fn pack(k: usize, n: usize, b: &[T], rs: usize, cs: usize) -> Self {
        let strips = n.div_ceil(NR);
        let mut data = Vec::with_capacity(k * strips * NR);
        for pc in (0..k).step_by(KC) {
            let kc = (pc + KC).min(k) - pc;
            for strip in 0..strips {
                let j0 = strip * NR;
                for l in 0..kc {
                    let row = (pc + l) * rs;
                    for c in 0..NR {
                        let j = j0 + c;
                        data.push(if j < n { b[row + j * cs] } else { T::zero() });
                    }
                }
            }
        }
        Self { data, k, n }
    }

    /// Contracted dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `kc × NR` strip for k-block starting at `pc` and column strip
    /// `strip`.
    #[inline]
    fn strip(&self, pc: usize, kc: usize, strip: usize) -> &[T] {
        let strips = self.n.div_ceil(NR);
        let off = pc * strips * NR + strip * kc * NR;
        &self.data[off..off + kc * NR]
    }
}

/// Pack rows `[i0, i0+rows)` × cols `[p0, p0+kc)` of an effective matrix
/// (element `(i, l)` at `a[i*rs + l*cs]`) into `MR`-tall micro-panels:
/// panel-major, then `l`-major, then the `MR` rows (zero-padded).
#[allow(clippy::too_many_arguments)]
fn pack_a_block<T: Scalar>(
    buf: &mut Vec<T>,
    a: &[T],
    rs: usize,
    cs: usize,
    i0: usize,
    rows: usize,
    p0: usize,
    kc: usize,
) {
    buf.clear();
    for ip in 0..rows.div_ceil(MR) {
        for l in 0..kc {
            let col = (p0 + l) * cs;
            for r in 0..MR {
                let row = ip * MR + r;
                buf.push(if row < rows {
                    a[(i0 + row) * rs + col]
                } else {
                    T::zero()
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// kernels
// ---------------------------------------------------------------------------

/// The register-tiled `MR × NR` microkernel: `acc += Ap · Bp` over a
/// `kc`-deep packed micro-panel pair.
///
/// The accumulator tile is copied into a local `regs` array for the loop
/// and written back once at the end. The copy is load-bearing: operating
/// through the `&mut` reference directly defeats LLVM's scalar-replacement
/// pass in some inlining contexts and the whole tile silently scalarizes
/// (measured 5× slower); the local array is reliably promoted to vector
/// registers.
#[inline(always)]
fn microkernel<T: Scalar>(kc: usize, ap: &[T], bp: &[T], acc: &mut [[T; NR]; MR]) {
    let mut regs = *acc;
    for l in 0..kc {
        let av: &[T; MR] = ap[l * MR..l * MR + MR].try_into().expect("MR panel");
        let bv: &[T; NR] = bp[l * NR..l * NR + NR].try_into().expect("NR strip");
        for (regr, &ar) in regs.iter_mut().zip(av.iter()) {
            for (regv, &bc) in regr.iter_mut().zip(bv.iter()) {
                *regv += ar * bc;
            }
        }
    }
    *acc = regs;
}

/// Packed-path macro kernel for output rows `[i0, i1)`: packs `A` blocks on
/// the fly and drives the microkernel against a pre-packed `B`. `c` holds
/// only rows `[i0, i1)`, row-major with leading dimension `pb.n()`.
///
/// Per output element the accumulation order is: ascending `KC`-block, one
/// register-summed partial per block — independent of how rows were split
/// across calls, which is what keeps threaded execution bitwise equal to
/// sequential.
fn packed_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    pb: &PackedB<T>,
    c: &mut [T],
) {
    let (k, n) = (pb.k, pb.n);
    let strips = n.div_ceil(NR);
    let mut apack: Vec<T> = Vec::with_capacity(MC * KC);
    for ic in (i0..i1).step_by(MC) {
        let rows = (ic + MC).min(i1) - ic;
        for pc in (0..k).step_by(KC) {
            let kc = (pc + KC).min(k) - pc;
            pack_a_block(&mut apack, a, a_rs, a_cs, ic, rows, pc, kc);
            for s in 0..strips {
                let j0 = s * NR;
                let ncols = NR.min(n - j0);
                let bp = pb.strip(pc, kc, s);
                for ip in 0..rows.div_ceil(MR) {
                    let ap = &apack[ip * MR * kc..(ip + 1) * MR * kc];
                    let mut acc = [[T::zero(); NR]; MR];
                    microkernel(kc, ap, bp, &mut acc);
                    let rmax = MR.min(rows - ip * MR);
                    for (r, accr) in acc.iter().enumerate().take(rmax) {
                        let crow0 = (ic - i0 + ip * MR + r) * n + j0;
                        for (cj, &v) in c[crow0..crow0 + ncols].iter_mut().zip(accr.iter()) {
                            *cj += v;
                        }
                    }
                }
            }
        }
    }
}

/// Scalar-path kernel for output rows `[i0, i1)`: plain `(i, l, j)` loop
/// with per-element ascending-`l` accumulation (chunking-invariant). `c`
/// holds only rows `[i0, i1)`.
#[allow(clippy::too_many_arguments)]
fn scalar_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    k: usize,
    n: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    b: &[T],
    b_rs: usize,
    b_cs: usize,
    c: &mut [T],
) {
    for i in i0..i1 {
        let crow = &mut c[(i - i0) * n..(i - i0) * n + n];
        for l in 0..k {
            let ail = a[i * a_rs + l * a_cs];
            if b_cs == 1 {
                let brow = &b[l * b_rs..l * b_rs + n];
                for (cj, &bj) in crow.iter_mut().zip(brow.iter()) {
                    *cj += ail * bj;
                }
            } else {
                for (j, cj) in crow.iter_mut().enumerate() {
                    *cj += ail * b[l * b_rs + j * b_cs];
                }
            }
        }
    }
}

/// GEMV-path kernel (`n == 1`) for output rows `[i0, i1)`: one dot product
/// per row, register-accumulated then added once to `c`.
#[allow(clippy::too_many_arguments)]
fn gemv_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    k: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    b: &[T],
    b_rs: usize,
    c: &mut [T],
) {
    for i in i0..i1 {
        let mut acc = T::zero();
        if a_cs == 1 {
            let arow = &a[i * a_rs..i * a_rs + k];
            if b_rs == 1 {
                for (&ail, &bl) in arow.iter().zip(b.iter()) {
                    acc += ail * bl;
                }
            } else {
                for (l, &ail) in arow.iter().enumerate() {
                    acc += ail * b[l * b_rs];
                }
            }
        } else {
            for l in 0..k {
                acc += a[i * a_rs + l * a_cs] * b[l * b_rs];
            }
        }
        c[i - i0] += acc;
    }
}

// ---------------------------------------------------------------------------
// public entry points
// ---------------------------------------------------------------------------

/// `C = A · B` for row-major matrices given as flat slices.
///
/// `a` is `m×k`, `b` is `k×n`, `c` (output, overwritten) is `m×n`.
pub fn gemm_slices<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for x in c.iter_mut() {
        *x = T::zero();
    }
    gemm_acc_slices(m, k, n, a, b, c);
}

/// `C += A · B` for row-major flat slices (accumulating form).
pub fn gemm_acc_slices<T: Scalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], c: &mut [T]) {
    crate::counter::add_flops(2 * (m as u64) * (n as u64) * (k as u64));
    if m == 0 || n == 0 {
        return;
    }
    match gemm_path(k, n) {
        GemmPath::Gemv => gemv_rows(0, m, k, a, k, 1, b, n, c),
        GemmPath::Scalar => scalar_rows(0, m, k, n, a, k, 1, b, n, 1, c),
        GemmPath::Packed => {
            let pb = PackedB::pack(k, n, b, n, 1);
            packed_rows(0, m, a, k, 1, &pb, c);
        }
    }
}

/// `C[i0..i1, :] += A[i0..i1, :] · B` against a pre-packed `B` — the
/// row-panel entry point parallel callers fan out over a thread pool.
/// `i0` should be [`MC`]-aligned so every chunking packs identical `A`
/// panels; `a` is the full effective matrix viewed through strides
/// `(a_rs, a_cs)`; `c` holds only rows `[i0, i1)`.
pub fn gemm_acc_packed_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    a: &[T],
    a_rs: usize,
    a_cs: usize,
    pb: &PackedB<T>,
    c: &mut [T],
) {
    crate::counter::add_flops(2 * ((i1 - i0) as u64) * (pb.n as u64) * (pb.k as u64));
    packed_rows(i0, i1, a, a_rs, a_cs, pb, c);
}

/// `y[i0..i1] += A[i0..i1, :] · b` — the `n == 1` row-panel entry point
/// (Davidson matvec shape). `b`'s element `l` lives at `b[l*b_rs]`.
#[allow(clippy::too_many_arguments)]
pub fn gemv_acc_rows<T: Scalar>(
    i0: usize,
    i1: usize,
    k: usize,
    a: &[T],
    b: &[T],
    b_rs: usize,
    c: &mut [T],
) {
    crate::counter::add_flops(2 * ((i1 - i0) as u64) * (k as u64));
    gemv_rows(i0, i1, k, a, k, 1, b, b_rs, c);
}

/// General matrix multiply on [`DenseTensor`] matrices with optional
/// transposition of either operand: `C = op(A) · op(B)`.
///
/// Transposed operands are read through swapped strides during packing —
/// no transposed copy is materialized.
pub fn gemm<T: Scalar>(
    a: &DenseTensor<T>,
    la: Layout,
    b: &DenseTensor<T>,
    lb: Layout,
) -> Result<DenseTensor<T>> {
    if a.order() != 2 || b.order() != 2 {
        return Err(Error::ShapeMismatch(format!(
            "gemm wants matrices, got orders {} and {}",
            a.order(),
            b.order()
        )));
    }
    // effective dims and strides: element (i, l) of op(A) at a[i*rs + l*cs]
    let (m, ka, a_rs, a_cs) = match la {
        Layout::Normal => (a.dims()[0], a.dims()[1], a.dims()[1], 1),
        Layout::Transposed => (a.dims()[1], a.dims()[0], 1, a.dims()[1]),
    };
    let (kb, n, b_rs, b_cs) = match lb {
        Layout::Normal => (b.dims()[0], b.dims()[1], b.dims()[1], 1),
        Layout::Transposed => (b.dims()[1], b.dims()[0], 1, b.dims()[1]),
    };
    if ka != kb {
        return Err(Error::ShapeMismatch(format!(
            "gemm inner dims {ka} != {kb}"
        )));
    }
    crate::counter::add_flops(2 * (m as u64) * (n as u64) * (ka as u64));
    let mut c = DenseTensor::zeros([m, n]);
    if m == 0 || n == 0 {
        return Ok(c);
    }
    let (ad, bd, cd) = (a.data(), b.data(), c.data_mut());
    match gemm_path(ka, n) {
        GemmPath::Gemv => gemv_rows(0, m, ka, ad, a_rs, a_cs, bd, b_rs, cd),
        GemmPath::Scalar => scalar_rows(0, m, ka, n, ad, a_rs, a_cs, bd, b_rs, b_cs, cd),
        GemmPath::Packed => {
            let pb = PackedB::pack(ka, n, bd, b_rs, b_cs);
            packed_rows(0, m, ad, a_rs, a_cs, &pb, cd);
        }
    }
    Ok(c)
}

/// Convenience: `C = A · B` for `f64` matrices.
pub fn gemm_f64(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> Result<DenseTensor<f64>> {
    gemm(a, Layout::Normal, b, Layout::Normal)
}

/// Matrix–vector product `y = A·x` (row-major `m×n` times length-`n`).
pub fn gemv<T: Scalar>(a: &DenseTensor<T>, x: &[T]) -> Result<Vec<T>> {
    if a.order() != 2 {
        return Err(Error::ShapeMismatch("gemv wants a matrix".into()));
    }
    let (m, n) = (a.dims()[0], a.dims()[1]);
    if x.len() != n {
        return Err(Error::ShapeMismatch(format!(
            "gemv dims {n} vs vector {}",
            x.len()
        )));
    }
    crate::counter::add_flops(2 * (m as u64) * (n as u64));
    let mut y = vec![T::zero(); m];
    gemv_rows(0, m, n, a.data(), n, 1, x, 1, &mut y);
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive(a: &DenseTensor<f64>, b: &DenseTensor<f64>) -> DenseTensor<f64> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut c = DenseTensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                c.set(&[i, j], s);
            }
        }
        c
    }

    #[test]
    fn small_exact() {
        let a = DenseTensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseTensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = gemm_f64(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_neutral() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseTensor::<f64>::random([5, 5], &mut rng);
        let i = DenseTensor::<f64>::eye(5);
        assert!(gemm_f64(&a, &i).unwrap().allclose(&a, 1e-14));
        assert!(gemm_f64(&i, &a).unwrap().allclose(&a, 1e-14));
    }

    #[test]
    fn blocked_matches_naive_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(4);
        // shapes straddling the scalar/packed threshold and the MR/NR/MC/KC
        // tile edges, including k > KC (multi-panel accumulation)
        for (m, k, n) in [
            (1, 1, 1),
            (3, 7, 5),
            (65, 129, 33),
            (70, 40, 90),
            (5, 300, 33),
            (130, 260, 17),
            (4, 8, 2048),
        ] {
            let a = DenseTensor::<f64>::random([m, k], &mut rng);
            let b = DenseTensor::<f64>::random([k, n], &mut rng);
            let c = gemm_f64(&a, &b).unwrap();
            assert!(c.allclose(&naive(&a, &b), 1e-11), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn transposed_layouts() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseTensor::<f64>::random([4, 6], &mut rng);
        let b = DenseTensor::<f64>::random([4, 3], &mut rng);
        // A^T (6x4) * B (4x3)
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        let at = a.permute(&[1, 0]).unwrap();
        assert!(c.allclose(&naive(&at, &b), 1e-12));
        // B^T (3x4) * A (4x6)
        let d = gemm(&b, Layout::Transposed, &a, Layout::Normal).unwrap();
        let bt = b.permute(&[1, 0]).unwrap();
        assert!(d.allclose(&naive(&bt, &a), 1e-12));
    }

    #[test]
    fn transposed_layouts_packed_path() {
        // large enough that gemm_path picks Packed: transposes must be
        // handled during packing, for every layout combination
        let mut rng = StdRng::seed_from_u64(51);
        let a = DenseTensor::<f64>::random([67, 41], &mut rng);
        let b = DenseTensor::<f64>::random([67, 63], &mut rng);
        assert_eq!(gemm_path(67, 63), GemmPath::Packed);
        let at = a.permute(&[1, 0]).unwrap();
        let bt = b.permute(&[1, 0]).unwrap();
        // Aᵀ·B
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        assert!(c.allclose(&naive(&at, &b), 1e-11));
        // Aᵀ·(Bᵀ)ᵀ — pass the materialized Bᵀ as Transposed
        let d = gemm(&a, Layout::Transposed, &bt, Layout::Transposed).unwrap();
        assert!(d.allclose(&naive(&at, &b), 1e-11));
        // A·B via both-normal on the same shapes
        let e = gemm(&at, Layout::Normal, &b, Layout::Normal).unwrap();
        assert!(e.allclose(&naive(&at, &b), 1e-11));
    }

    #[test]
    fn packed_rows_chunking_is_bitwise_invariant() {
        // the row-panel entry point must give bit-identical results no
        // matter how rows are split at MC boundaries
        let mut rng = StdRng::seed_from_u64(52);
        let (m, k, n) = (3 * MC + 17, 300, 70);
        let a = DenseTensor::<f64>::random([m, k], &mut rng);
        let b = DenseTensor::<f64>::random([k, n], &mut rng);
        let mut whole = vec![0.0; m * n];
        gemm_acc_slices(m, k, n, a.data(), b.data(), &mut whole);
        let pb = PackedB::pack(k, n, b.data(), n, 1);
        let mut chunked = Vec::with_capacity(m * n);
        for r0 in (0..m).step_by(MC) {
            let r1 = (r0 + MC).min(m);
            let mut part = vec![0.0; (r1 - r0) * n];
            gemm_acc_packed_rows(r0, r1, a.data(), k, 1, &pb, &mut part);
            chunked.extend_from_slice(&part);
        }
        assert_eq!(whole, chunked, "row chunking changed bits");
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = DenseTensor::<f64>::zeros([2, 3]);
        let b = DenseTensor::<f64>::zeros([4, 2]);
        assert!(gemm_f64(&a, &b).is_err());
    }

    #[test]
    fn counts_flops() {
        let a = DenseTensor::<f64>::zeros([8, 4]);
        let b = DenseTensor::<f64>::zeros([4, 16]);
        let g = counter::FlopGuard::start();
        gemm_f64(&a, &b).unwrap();
        assert_eq!(g.elapsed(), 2 * 8 * 4 * 16);
    }

    #[test]
    fn complex_gemm() {
        use crate::Complex64 as C;
        let a = DenseTensor::from_vec([1, 2], vec![C::new(0.0, 1.0), C::new(1.0, 0.0)]).unwrap();
        let b = DenseTensor::from_vec([2, 1], vec![C::new(0.0, 1.0), C::new(2.0, 0.0)]).unwrap();
        let c = gemm(&a, Layout::Normal, &b, Layout::Normal).unwrap();
        // i*i + 1*2 = -1 + 2 = 1
        assert!((c.at(&[0, 0]) - C::new(1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn complex_gemm_packed_path() {
        use crate::Complex64 as C;
        let mut rng = StdRng::seed_from_u64(53);
        let a = DenseTensor::<C>::random([19, 80], &mut rng);
        let b = DenseTensor::<C>::random([19, 40], &mut rng);
        assert_eq!(gemm_path(19, 40), GemmPath::Scalar);
        assert_eq!(gemm_path(80, 40), GemmPath::Packed);
        let c = gemm(&a, Layout::Transposed, &b, Layout::Normal).unwrap();
        // reference via the naive loop on materialized Aᵀ
        let at = a.permute(&[1, 0]).unwrap();
        let mut max = 0.0f64;
        for i in 0..80 {
            for j in 0..40 {
                let mut s = C::new(0.0, 0.0);
                for l in 0..19 {
                    s += at.at(&[i, l]) * b.at(&[l, j]);
                }
                max = max.max((c.at(&[i, j]) - s).abs());
            }
        }
        assert!(max < 1e-11, "max dev {max}");
    }

    #[test]
    fn gemv_matches_gemm() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = DenseTensor::<f64>::random([7, 9], &mut rng);
        let x = DenseTensor::<f64>::random([9, 1], &mut rng);
        let y = gemv(&a, x.data()).unwrap();
        let y2 = gemm_f64(&a, &x).unwrap();
        for (i, &yi) in y.iter().enumerate() {
            assert!((yi - y2.at(&[i, 0])).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_path_taken_for_width_one() {
        assert_eq!(gemm_path(5000, 1), GemmPath::Gemv);
        // and it agrees with the scalar reference
        let mut rng = StdRng::seed_from_u64(7);
        let a = DenseTensor::<f64>::random([33, 700], &mut rng);
        let x = DenseTensor::<f64>::random([700, 1], &mut rng);
        let y = gemm_f64(&a, &x).unwrap();
        assert!(y.allclose(&naive(&a, &x), 1e-10));
    }

    #[test]
    fn acc_form_accumulates() {
        // gemm_acc_slices must add into existing C on every path
        let mut rng = StdRng::seed_from_u64(8);
        for (k, n) in [(3, 4), (300, 33), (700, 1)] {
            let m = 6;
            let a = DenseTensor::<f64>::random([m, k], &mut rng);
            let b = DenseTensor::<f64>::random([k, n], &mut rng);
            let mut c = vec![1.0f64; m * n];
            gemm_acc_slices(m, k, n, a.data(), b.data(), &mut c);
            let reference = naive(&a, &b);
            for (i, &ci) in c.iter().enumerate() {
                assert!(
                    (ci - 1.0 - reference.data()[i]).abs() < 1e-10,
                    "path {:?}",
                    gemm_path(k, n)
                );
            }
        }
    }
}

//! Property-based tests for the local tensor kernels.

use proptest::prelude::*;
use tt_tensor::{einsum, gemm, Complex64, DenseTensor, Layout, Scalar, SparseTensor};

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_shape(dims: Vec<usize>) -> impl Strategy<Value = DenseTensor<f64>> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-1.0f64..1.0, n)
        .prop_map(move |data| DenseTensor::from_vec(dims.clone(), data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A permutation followed by its inverse is the identity.
    #[test]
    fn permute_roundtrip(dims in small_dims(), seed in 0u64..1000) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = DenseTensor::<f64>::random(dims.clone(), &mut rng);
        let n = dims.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let p = t.permute(&perm).unwrap();
        // invert
        let mut inv = vec![0usize; n];
        for (i, &pi) in perm.iter().enumerate() { inv[pi] = i; }
        let back = p.permute(&inv).unwrap();
        prop_assert!(t.allclose(&back, 0.0));
    }

    /// Matrix multiplication is associative: (AB)C == A(BC).
    #[test]
    fn gemm_associative(
        a in tensor_with_shape(vec![3, 4]),
        b in tensor_with_shape(vec![4, 2]),
        c in tensor_with_shape(vec![2, 5]),
    ) {
        let ab_c = einsum("ik,kj->ij", &einsum("ik,kj->ij", &a, &b).unwrap(), &c).unwrap();
        let a_bc = einsum("ik,kj->ij", &a, &einsum("ik,kj->ij", &b, &c).unwrap()).unwrap();
        prop_assert!(ab_c.allclose(&a_bc, 1e-10));
    }

    /// Contraction is bilinear in the first argument.
    #[test]
    fn einsum_linear(
        a1 in tensor_with_shape(vec![2, 3, 2]),
        a2 in tensor_with_shape(vec![2, 3, 2]),
        b in tensor_with_shape(vec![2, 3, 4]),
        alpha in -2.0f64..2.0,
    ) {
        let spec = "isj,jsm->im";
        let lhs = {
            let mut s = a1.clone();
            s.axpy(alpha, &a2).unwrap();
            einsum(spec, &s, &b).unwrap()
        };
        let mut rhs = einsum(spec, &a1, &b).unwrap();
        rhs.axpy(alpha, &einsum(spec, &a2, &b).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-10));
    }

    /// Sparse kernels agree with dense einsum regardless of pattern.
    #[test]
    fn sparse_kernels_match_dense(
        a in tensor_with_shape(vec![3, 4, 2]),
        b in tensor_with_shape(vec![2, 4, 3]),
        tol in 0.0f64..0.9,
    ) {
        // sparsify with a threshold to get varied patterns
        let sa = SparseTensor::from_dense(&a, tol);
        let sb = SparseTensor::from_dense(&b, tol);
        let da = sa.to_dense();
        let db = sb.to_dense();
        let spec = "ika,akj->ij";
        let reference = einsum(spec, &da, &db).unwrap();
        let sd = sa.contract_dense(spec, &db).unwrap();
        prop_assert!(sd.allclose(&reference, 1e-10));
        let ss = sa.contract_sparse(spec, &sb).unwrap();
        prop_assert!(ss.to_dense().allclose(&reference, 1e-10));
    }

    /// einsum reduces to reference triple loop for matrices.
    #[test]
    fn gemm_matches_reference(
        a in tensor_with_shape(vec![4, 3]),
        b in tensor_with_shape(vec![3, 5]),
    ) {
        let c = einsum("ik,kj->ij", &a, &b).unwrap();
        for i in 0..4 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..3 { s += a.at(&[i, k]) * b.at(&[k, j]); }
                prop_assert!((c.at(&[i, j]) - s).abs() < 1e-12);
            }
        }
    }

    /// The packed register-tiled GEMM agrees with the naive triple loop on
    /// arbitrary (odd, degenerate, tile-straddling) shapes and layouts.
    #[test]
    fn packed_gemm_matches_naive_all_layouts(
        m in 1usize..70,
        k in 1usize..300,
        n in 1usize..70,
        seed in 0u64..1000,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        // stored shapes so that op(A) is m×k and op(B) is k×n
        let a = DenseTensor::<f64>::random(if ta { vec![k, m] } else { vec![m, k] }, &mut rng);
        let b = DenseTensor::<f64>::random(if tb { vec![n, k] } else { vec![k, n] }, &mut rng);
        let la = if ta { Layout::Transposed } else { Layout::Normal };
        let lb = if tb { Layout::Transposed } else { Layout::Normal };
        let c = gemm(&a, la, &b, lb).unwrap();
        prop_assert_eq!(c.dims(), &[m, n][..]);
        let at = |i: usize, l: usize| if ta { a.at(&[l, i]) } else { a.at(&[i, l]) };
        let bt = |l: usize, j: usize| if tb { b.at(&[j, l]) } else { b.at(&[l, j]) };
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k { s += at(i, l) * bt(l, j); }
                prop_assert!((c.at(&[i, j]) - s).abs() < 1e-10 * (k as f64).max(1.0),
                    "({}, {}) of {}x{}x{} ta={} tb={}", i, j, m, k, n, ta, tb);
            }
        }
    }

    /// The same property over Complex64 (the generic-Scalar fallback).
    #[test]
    fn packed_gemm_matches_naive_complex(
        m in 1usize..20,
        k in 1usize..200,
        n in 1usize..40,
        seed in 0u64..1000,
        ta in any::<bool>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = DenseTensor::<Complex64>::random(if ta { vec![k, m] } else { vec![m, k] }, &mut rng);
        let b = DenseTensor::<Complex64>::random(vec![k, n], &mut rng);
        let la = if ta { Layout::Transposed } else { Layout::Normal };
        let c = gemm(&a, la, &b, Layout::Normal).unwrap();
        let at = |i: usize, l: usize| if ta { a.at(&[l, i]) } else { a.at(&[i, l]) };
        for i in 0..m {
            for j in 0..n {
                let mut s = Complex64::new(0.0, 0.0);
                for l in 0..k { s += at(i, l) * b.at(&[l, j]); }
                prop_assert!((c.at(&[i, j]) - s).abs() < 1e-10 * (k as f64).max(1.0),
                    "({}, {}) of {}x{}x{} ta={}", i, j, m, k, n, ta);
            }
        }
    }

    /// Fused width-1 outputs (the Davidson matvec shape) take the gemv
    /// path; it must agree with the general kernel.
    #[test]
    fn gemv_path_matches_naive(
        m in 1usize..80,
        k in 1usize..2500,
        seed in 0u64..1000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = DenseTensor::<f64>::random(vec![m, k], &mut rng);
        let x = DenseTensor::<f64>::random(vec![k, 1], &mut rng);
        let y = gemm(&a, Layout::Normal, &x, Layout::Normal).unwrap();
        for i in 0..m {
            let mut s = 0.0;
            for l in 0..k { s += a.at(&[i, l]) * x.at(&[l, 0]); }
            prop_assert!((y.at(&[i, 0]) - s).abs() < 1e-10 * (k as f64).max(1.0));
        }
    }

    /// dot(x, x) equals ||x||^2 and the norm is permutation invariant.
    #[test]
    fn norm_invariants(dims in small_dims(), seed in 0u64..1000) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = DenseTensor::<f64>::random(dims.clone(), &mut rng);
        prop_assert!((t.dot(&t).unwrap() - t.norm2()).abs() < 1e-10);
        let n = dims.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        prop_assert!((t.permute(&perm).unwrap().norm() - t.norm()).abs() < 1e-12);
    }
}

//! Property-based tests for the local tensor kernels.

use proptest::prelude::*;
use tt_tensor::ssmerge::{merge_chunk, SsBTable};
use tt_tensor::{einsum, gemm, Complex64, DenseTensor, Layout, Scalar, SparseTensor};

/// Raw `(row, key, val)` / `(key, col, val)` entry lists for the sparse
/// merge kernel — duplicates (same coordinates twice) and absent keys
/// (empty runs on either side) arise naturally from the generator.
fn ss_raw_entries(
    rows: u64,
    keys: u64,
    max_len: usize,
) -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    prop::collection::vec((0..rows, 0..keys, -1.0f64..1.0), 0..max_len)
}

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_shape(dims: Vec<usize>) -> impl Strategy<Value = DenseTensor<f64>> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-1.0f64..1.0, n)
        .prop_map(move |data| DenseTensor::from_vec(dims.clone(), data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A permutation followed by its inverse is the identity.
    #[test]
    fn permute_roundtrip(dims in small_dims(), seed in 0u64..1000) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = DenseTensor::<f64>::random(dims.clone(), &mut rng);
        let n = dims.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        let p = t.permute(&perm).unwrap();
        // invert
        let mut inv = vec![0usize; n];
        for (i, &pi) in perm.iter().enumerate() { inv[pi] = i; }
        let back = p.permute(&inv).unwrap();
        prop_assert!(t.allclose(&back, 0.0));
    }

    /// Matrix multiplication is associative: (AB)C == A(BC).
    #[test]
    fn gemm_associative(
        a in tensor_with_shape(vec![3, 4]),
        b in tensor_with_shape(vec![4, 2]),
        c in tensor_with_shape(vec![2, 5]),
    ) {
        let ab_c = einsum("ik,kj->ij", &einsum("ik,kj->ij", &a, &b).unwrap(), &c).unwrap();
        let a_bc = einsum("ik,kj->ij", &a, &einsum("ik,kj->ij", &b, &c).unwrap()).unwrap();
        prop_assert!(ab_c.allclose(&a_bc, 1e-10));
    }

    /// Contraction is bilinear in the first argument.
    #[test]
    fn einsum_linear(
        a1 in tensor_with_shape(vec![2, 3, 2]),
        a2 in tensor_with_shape(vec![2, 3, 2]),
        b in tensor_with_shape(vec![2, 3, 4]),
        alpha in -2.0f64..2.0,
    ) {
        let spec = "isj,jsm->im";
        let lhs = {
            let mut s = a1.clone();
            s.axpy(alpha, &a2).unwrap();
            einsum(spec, &s, &b).unwrap()
        };
        let mut rhs = einsum(spec, &a1, &b).unwrap();
        rhs.axpy(alpha, &einsum(spec, &a2, &b).unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-10));
    }

    /// Sparse kernels agree with dense einsum regardless of pattern.
    #[test]
    fn sparse_kernels_match_dense(
        a in tensor_with_shape(vec![3, 4, 2]),
        b in tensor_with_shape(vec![2, 4, 3]),
        tol in 0.0f64..0.9,
    ) {
        // sparsify with a threshold to get varied patterns
        let sa = SparseTensor::from_dense(&a, tol);
        let sb = SparseTensor::from_dense(&b, tol);
        let da = sa.to_dense();
        let db = sb.to_dense();
        let spec = "ika,akj->ij";
        let reference = einsum(spec, &da, &db).unwrap();
        let sd = sa.contract_dense(spec, &db).unwrap();
        prop_assert!(sd.allclose(&reference, 1e-10));
        let ss = sa.contract_sparse(spec, &sb).unwrap();
        prop_assert!(ss.to_dense().allclose(&reference, 1e-10));
    }

    /// einsum reduces to reference triple loop for matrices.
    #[test]
    fn gemm_matches_reference(
        a in tensor_with_shape(vec![4, 3]),
        b in tensor_with_shape(vec![3, 5]),
    ) {
        let c = einsum("ik,kj->ij", &a, &b).unwrap();
        for i in 0..4 {
            for j in 0..5 {
                let mut s = 0.0;
                for k in 0..3 { s += a.at(&[i, k]) * b.at(&[k, j]); }
                prop_assert!((c.at(&[i, j]) - s).abs() < 1e-12);
            }
        }
    }

    /// The packed register-tiled GEMM agrees with the naive triple loop on
    /// arbitrary (odd, degenerate, tile-straddling) shapes and layouts.
    #[test]
    fn packed_gemm_matches_naive_all_layouts(
        m in 1usize..70,
        k in 1usize..300,
        n in 1usize..70,
        seed in 0u64..1000,
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        // stored shapes so that op(A) is m×k and op(B) is k×n
        let a = DenseTensor::<f64>::random(if ta { vec![k, m] } else { vec![m, k] }, &mut rng);
        let b = DenseTensor::<f64>::random(if tb { vec![n, k] } else { vec![k, n] }, &mut rng);
        let la = if ta { Layout::Transposed } else { Layout::Normal };
        let lb = if tb { Layout::Transposed } else { Layout::Normal };
        let c = gemm(&a, la, &b, lb).unwrap();
        prop_assert_eq!(c.dims(), &[m, n][..]);
        let at = |i: usize, l: usize| if ta { a.at(&[l, i]) } else { a.at(&[i, l]) };
        let bt = |l: usize, j: usize| if tb { b.at(&[j, l]) } else { b.at(&[l, j]) };
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k { s += at(i, l) * bt(l, j); }
                prop_assert!((c.at(&[i, j]) - s).abs() < 1e-10 * (k as f64).max(1.0),
                    "({}, {}) of {}x{}x{} ta={} tb={}", i, j, m, k, n, ta, tb);
            }
        }
    }

    /// The same property over Complex64 (the generic-Scalar fallback).
    #[test]
    fn packed_gemm_matches_naive_complex(
        m in 1usize..20,
        k in 1usize..200,
        n in 1usize..40,
        seed in 0u64..1000,
        ta in any::<bool>(),
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = DenseTensor::<Complex64>::random(if ta { vec![k, m] } else { vec![m, k] }, &mut rng);
        let b = DenseTensor::<Complex64>::random(vec![k, n], &mut rng);
        let la = if ta { Layout::Transposed } else { Layout::Normal };
        let c = gemm(&a, la, &b, Layout::Normal).unwrap();
        let at = |i: usize, l: usize| if ta { a.at(&[l, i]) } else { a.at(&[i, l]) };
        for i in 0..m {
            for j in 0..n {
                let mut s = Complex64::new(0.0, 0.0);
                for l in 0..k { s += at(i, l) * b.at(&[l, j]); }
                prop_assert!((c.at(&[i, j]) - s).abs() < 1e-10 * (k as f64).max(1.0),
                    "({}, {}) of {}x{}x{} ta={}", i, j, m, k, n, ta);
            }
        }
    }

    /// Fused width-1 outputs (the Davidson matvec shape) take the gemv
    /// path; it must agree with the general kernel.
    #[test]
    fn gemv_path_matches_naive(
        m in 1usize..80,
        k in 1usize..2500,
        seed in 0u64..1000,
    ) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = DenseTensor::<f64>::random(vec![m, k], &mut rng);
        let x = DenseTensor::<f64>::random(vec![k, 1], &mut rng);
        let y = gemm(&a, Layout::Normal, &x, Layout::Normal).unwrap();
        for i in 0..m {
            let mut s = 0.0;
            for l in 0..k { s += a.at(&[i, l]) * x.at(&[l, 0]); }
            prop_assert!((y.at(&[i, 0]) - s).abs() < 1e-10 * (k as f64).max(1.0));
        }
    }

    /// dot(x, x) equals ||x||^2 and the norm is permutation invariant.
    #[test]
    fn norm_invariants(dims in small_dims(), seed in 0u64..1000) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = DenseTensor::<f64>::random(dims.clone(), &mut rng);
        prop_assert!((t.dot(&t).unwrap() - t.norm2()).abs() < 1e-10);
        let n = dims.len();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        prop_assert!((t.permute(&perm).unwrap().norm() - t.norm()).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sorted-merge ss kernel agrees with a naive quadratic reference
    /// on raw entry lists — including duplicate `(row, key)` entries and
    /// keys with empty runs on either side — and reports exactly
    /// `2 · (matched A×B pairs)` flops. The output must come back sorted
    /// by `(row, col)` with the touched pattern matching the reference.
    #[test]
    fn ss_merge_matches_naive(
        m in 1u64..10,
        kk in 1u64..8,
        n in 1u64..9,
        a_raw in ss_raw_entries(10, 8, 40),
        b_raw in ss_raw_entries(8, 9, 40),
    ) {
        let a_raw: Vec<_> = a_raw.into_iter()
            .filter(|e| e.0 < m && e.1 < kk).collect();
        let b_raw: Vec<_> = b_raw.into_iter()
            .filter(|e| e.0 < kk && e.1 < n).collect();
        let mut a = a_raw.clone();
        a.sort_by_key(|e| e.1);
        let btab = SsBTable::build(b_raw.clone());
        let (got, flops) = merge_chunk(&a, &btab, 0, m, n);

        let mut pairs = 0u64;
        for &(_, ka, _) in &a_raw {
            pairs += b_raw.iter().filter(|e| e.0 == ka).count() as u64;
        }
        prop_assert_eq!(flops, 2 * pairs);

        prop_assert!(got.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
            "output not sorted by (row, col)");

        let mut acc = vec![0.0f64; (m * n) as usize];
        let mut touched = vec![false; (m * n) as usize];
        for &(r, ka, va) in &a_raw {
            for &(kb, c, vb) in &b_raw {
                if ka == kb {
                    let idx = (r * n + c) as usize;
                    acc[idx] += va * vb;
                    touched[idx] = true;
                }
            }
        }
        let got_map: std::collections::HashMap<(u64, u64), f64> =
            got.iter().map(|&(r, c, v)| ((r, c), v)).collect();
        prop_assert_eq!(got_map.len(), got.len());
        for r in 0..m {
            for c in 0..n {
                let idx = (r * n + c) as usize;
                match got_map.get(&(r, c)) {
                    Some(&v) => {
                        prop_assert!(touched[idx], "spurious entry at ({}, {})", r, c);
                        prop_assert!((v - acc[idx]).abs() < 1e-9);
                    }
                    None => prop_assert!(!touched[idx], "missing entry at ({}, {})", r, c),
                }
            }
        }
    }

    /// Splitting the row range at arbitrary points and stitching the chunk
    /// results is *bitwise* identical to one whole-range merge — the
    /// invariant the threaded and multi-process backends rest on — for
    /// both f64 and Complex64.
    #[test]
    fn ss_merge_chunking_bitwise(
        m in 1u64..12,
        a_raw in ss_raw_entries(12, 8, 48),
        b_raw in ss_raw_entries(8, 9, 48),
        splits in prop::collection::vec(0u64..13, 0..4),
    ) {
        let n = 9u64;
        let a_raw: Vec<_> = a_raw.into_iter().filter(|e| e.0 < m).collect();
        let mut cuts: Vec<u64> = splits.into_iter().map(|s| s % (m + 1)).collect();
        cuts.push(0);
        cuts.push(m);
        cuts.sort_unstable();
        cuts.dedup();

        // f64
        let mut a = a_raw.clone();
        a.sort_by_key(|e| e.1);
        let btab = SsBTable::build(b_raw.clone());
        let (whole, _) = merge_chunk(&a, &btab, 0, m, n);
        let mut stitched = Vec::new();
        for w in cuts.windows(2) {
            let part: Vec<_> = a.iter().copied()
                .filter(|e| e.0 >= w[0] && e.0 < w[1]).collect();
            let (res, _) = merge_chunk(&part, &btab, w[0], w[1], n);
            stitched.extend(res);
        }
        prop_assert_eq!(whole.len(), stitched.len());
        for (x, y) in whole.iter().zip(&stitched) {
            prop_assert_eq!((x.0, x.1, x.2.to_bits()), (y.0, y.1, y.2.to_bits()));
        }

        // Complex64 over the same coordinates (im is a distinct function
        // of the value so both lanes are exercised)
        let lift = |e: &(u64, u64, f64)| (e.0, e.1, Complex64::new(e.2, -0.5 * e.2 + 0.125));
        let mut ac: Vec<_> = a_raw.iter().map(lift).collect();
        ac.sort_by_key(|e| e.1);
        let btab_c = SsBTable::build(b_raw.iter().map(lift).collect());
        let (whole_c, _) = merge_chunk(&ac, &btab_c, 0, m, n);
        let mut stitched_c = Vec::new();
        for w in cuts.windows(2) {
            let part: Vec<_> = ac.iter().copied()
                .filter(|e| e.0 >= w[0] && e.0 < w[1]).collect();
            let (res, _) = merge_chunk(&part, &btab_c, w[0], w[1], n);
            stitched_c.extend(res);
        }
        prop_assert_eq!(whole_c.len(), stitched_c.len());
        for (x, y) in whole_c.iter().zip(&stitched_c) {
            prop_assert_eq!(
                (x.0, x.1, x.2.re.to_bits(), x.2.im.to_bits()),
                (y.0, y.1, y.2.re.to_bits(), y.2.im.to_bits())
            );
        }
    }
}

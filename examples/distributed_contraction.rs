//! Tour of the distributed runtime: run the same DMRG steps with all
//! three block-sparsity algorithms on simulated Blue Waters and
//! Stampede2 nodes, print the BSP cost breakdown of Fig. 7, then run the
//! same pipeline again over the **multi-process shared-nothing backend**
//! (real OS worker processes behind the socket transport) and check it
//! reproduces the in-process numbers bit for bit.
//!
//! ```text
//! cargo run --release -p tt-examples --bin distributed_contraction [NODES]
//! ```

use dmrg::{Dmrg, Environments};
use tt_blocks::Algorithm;
use tt_dist::{ExecMode, Executor, Machine, SpawnSpec};
use tt_examples::example_schedule;
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

fn main() {
    // when this binary is re-executed as a transport worker, serve tasks
    // and exit instead of running the tour
    tt_dist::maybe_serve();
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n = 10;
    println!("== DMRG steps on simulated machines ({nodes} nodes) ==\n");

    let lattice = Lattice::chain(n);
    let mpo = heisenberg_j1j2(&lattice, 1.0, 0.0).build().unwrap();

    // grow a warm start serially first
    let exec_local = Executor::local();
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(n)).unwrap();
    let warm = Dmrg::new(&exec_local, Algorithm::List, &mpo);
    warm.run(&mut psi, &example_schedule(&[16, 32], 1)).unwrap();
    println!("warm state: m = {}\n", psi.max_bond_dim());

    println!(
        "{:<20} {:<14} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "machine", "algorithm", "GFlop", "sim(s)", "%gemm+sp", "%comm", "%map", "%svd"
    );
    for machine in [Machine::blue_waters(16), Machine::stampede2(64)] {
        for algo in [
            Algorithm::List,
            Algorithm::SparseDense,
            Algorithm::SparseSparse,
        ] {
            let exec = Executor::with_machine(machine.clone(), nodes, ExecMode::Sequential);
            let mut state = psi.clone();
            state.canonicalize(&exec_local, 0).unwrap();
            let driver = Dmrg::new(&exec, algo, &mpo);
            let mut envs = Environments::initialize(&exec, algo, &state, &mpo).unwrap();
            exec.reset_costs();
            // optimize the first half of a sweep, like the paper's electron
            // benchmarks time a single DMRG step at the middle sites
            let params = example_schedule(&[state.max_bond_dim()], 1).sweeps[0];
            for j in 0..n / 2 {
                driver
                    .optimize_bond(&mut state, &mut envs, j, &params, true)
                    .unwrap();
            }
            let sim = exec.sim_time();
            let flops = exec.total_flops();
            let t = sim.total().max(1e-30);
            println!(
                "{:<20} {:<14} {:>10.3e} {:>10.3e} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                machine.name,
                algo.to_string(),
                flops as f64 / 1e9,
                sim.total(),
                100.0 * (sim.gemm + sim.sparse) / t,
                100.0 * sim.comm / t,
                100.0 * (sim.transpose + sim.other) / t,
                100.0 * sim.svd / t,
            );
        }
    }
    println!(
        "\nThe list algorithm pays per-block latency (many supersteps); the\n\
         sparse algorithms pay bandwidth (one big contraction) - the Table II\n\
         trade-off, measured on the simulated runtime."
    );

    // -- the same step over real shared-nothing worker processes ---------
    println!("\n== multi-process shared-nothing backend ==\n");
    let step_energy = |exec: &Executor| {
        let mut state = psi.clone();
        state.canonicalize(&exec_local, 0).unwrap();
        let driver = Dmrg::new(exec, Algorithm::SparseSparse, &mpo);
        let mut envs =
            Environments::initialize(exec, Algorithm::SparseSparse, &state, &mpo).unwrap();
        let params = example_schedule(&[state.max_bond_dim()], 1).sweeps[0];
        let mut last = 0.0f64;
        for j in 0..n / 2 {
            last = driver
                .optimize_bond(&mut state, &mut envs, j, &params, true)
                .unwrap()
                .energy;
        }
        last
    };
    let seq = Executor::with_machine(Machine::blue_waters(16), nodes, ExecMode::Sequential);
    let e_seq = step_energy(&seq);
    match Executor::multi_process(
        Machine::blue_waters(16),
        nodes,
        2,
        SpawnSpec::SelfExec(Vec::new()),
    ) {
        Ok(mp) => {
            let e_mp = step_energy(&mp);
            println!("in-process sequential half-sweep energy: {e_seq:.12}");
            println!("2 worker processes, socket transport:    {e_mp:.12}");
            assert_eq!(
                e_seq.to_bits(),
                e_mp.to_bits(),
                "multi-process backend must be bitwise-identical"
            );
            println!("bitwise identical: yes");
        }
        Err(e) => println!("multi-process backend unavailable here: {e}"),
    }
}

//! The paper's spin benchmark, scaled down: `J1−J2` Heisenberg model at
//! `J2/J1 = 0.5` on a square-lattice cylinder (paper: 20×10; here a width-4
//! cylinder so it runs on a laptop core), with block-structure statistics
//! (Fig. 2) printed along the way.
//!
//! ```text
//! cargo run --release -p tt-examples --bin heisenberg_j1j2 [LX] [LY]
//! ```

use dmrg::{ground_state_energy, site_expectation, Dmrg};
use tt_blocks::{Algorithm, QN};
use tt_dist::Executor;
use tt_examples::{example_schedule, report_energy};
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let lx: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let ly: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let n = lx * ly;
    println!("== J1-J2 Heisenberg, {lx}x{ly} cylinder (J2/J1 = 0.5) ==\n");

    let lattice = Lattice::square_cylinder(lx, ly);
    let builder = heisenberg_j1j2(&lattice, 1.0, 0.5);
    let mpo = builder.build().expect("MPO builds");
    println!(
        "sites = {n}, bonds = {}, MPO k = {} (interaction range {})",
        lattice.bonds.len(),
        mpo.max_bond_dim(),
        lattice.max_bond_range()
    );

    let mut psi = Mps::product_state(&SpinHalf, &neel_state(n)).expect("product state");
    let exec = Executor::local();
    let solver = Dmrg::new(&exec, Algorithm::List, &mpo);
    let schedule = example_schedule(&[16, 32, 64], 2);
    let run = solver.run(&mut psi, &schedule).expect("DMRG runs");

    report_energy("DMRG energy", run.energy);
    report_energy("energy per site", run.energy / n as f64);
    for rec in &run.sweeps {
        println!(
            "  sweep: E = {:+.8}, max m = {:>4}, max trunc err = {:.2e}",
            rec.energy, rec.max_bond_dim, rec.max_trunc_err
        );
    }

    // block structure of the central MPS tensor (paper Fig. 2)
    let (nblocks, largest, fill) = psi.block_stats(n / 2);
    println!(
        "\ncentral tensor: {nblocks} blocks, largest extent {largest}, fill fraction {fill:.3}"
    );

    // magnetization profile across the first column
    println!("\n<Sz> per site (first column):");
    for y in 0..ly {
        let s = lattice.site(0, y);
        let sz = site_expectation(&psi, &SpinHalf, s, "Sz").unwrap();
        println!("  site {s:>3}: {sz:+.6}");
    }

    // ED cross-check when the system is small enough
    if n <= 16 {
        let terms = builder.expanded().expect("terms");
        let exact = ground_state_energy(&SpinHalf, n, &terms, QN::one(0)).expect("ED");
        report_energy("exact diagonalization", exact);
        println!("|DMRG - ED| = {:.2e}", (run.energy - exact).abs());
    }
    println!("done");
}

//! Shared helpers for the example binaries.

use dmrg::{DavidsonOptions, Schedule, SweepParams};

/// A bond-dimension ramp schedule with slightly stronger Davidson settings
/// than the sweep-time defaults (examples run few sweeps, so each solve
/// works a little harder). Noise decays geometrically and switches off for
/// the final quarter of the schedule, which keeps frustrated systems out
/// of product-state local minima while letting the last sweeps converge
/// variationally.
pub fn example_schedule(ms: &[usize], sweeps_per_m: usize) -> Schedule {
    let dav = DavidsonOptions {
        max_iter: 6,
        max_subspace: 3,
        tol: 1e-10,
        seed: 7,
    };
    let total = ms.len() * sweeps_per_m;
    let clean_from = total - total.div_ceil(4);
    Schedule {
        sweeps: (0..total)
            .map(|idx| {
                let m = ms[idx / sweeps_per_m];
                let noise = if idx >= clean_from {
                    0.0
                } else {
                    1e-3 * 0.1f64.powi(idx as i32)
                };
                SweepParams {
                    max_m: m,
                    cutoff: 1e-12,
                    davidson: dav,
                    noise,
                }
            })
            .collect(),
    }
}

/// Print a labelled energy line.
pub fn report_energy(label: &str, e: f64) {
    println!("{label:<40} {e:+.10}");
}

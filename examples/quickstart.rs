//! Quickstart: ground state of a Heisenberg spin chain, validated against
//! exact diagonalization.
//!
//! ```text
//! cargo run --release -p tt-examples --bin quickstart
//! ```

use dmrg::{ground_state_energy, Dmrg};
use tt_blocks::{Algorithm, QN};
use tt_dist::Executor;
use tt_examples::{example_schedule, report_energy};
use tt_mps::{heisenberg_j1j2, neel_state, Lattice, Mps, SpinHalf};

fn main() {
    let n = 12;
    println!("== Quickstart: N={n} Heisenberg chain ==\n");

    // 1. Hamiltonian as an MPO via AutoMPO
    let lattice = Lattice::chain(n);
    let builder = heisenberg_j1j2(&lattice, 1.0, 0.0);
    let mpo = builder.build().expect("MPO builds");
    println!("MPO bond dimension k = {}", mpo.max_bond_dim());

    // 2. initial state: Néel product state in the Sz = 0 sector
    let mut psi = Mps::product_state(&SpinHalf, &neel_state(n)).expect("product state");
    report_energy("initial <H> (Neel)", psi.expectation(&mpo).unwrap());

    // 3. two-site DMRG with a bond-dimension ramp
    let exec = Executor::local();
    let solver = Dmrg::new(&exec, Algorithm::List, &mpo);
    let schedule = example_schedule(&[8, 16, 32, 64], 2);
    let run = solver.run(&mut psi, &schedule).expect("DMRG converges");
    report_energy("DMRG ground-state energy", run.energy);
    println!("final bond dimensions: {:?}", psi.bond_dims());

    // 4. validate against exact diagonalization (Lanczos in the Sz=0 sector)
    let terms = builder.expanded().expect("terms expand");
    let exact = ground_state_energy(&SpinHalf, n, &terms, QN::one(0)).expect("ED runs");
    report_energy("exact diagonalization", exact);
    println!("\n|DMRG - ED| = {:.2e}", (run.energy - exact).abs());
    assert!(
        (run.energy - exact).abs() < 1e-6,
        "DMRG must reproduce the ED energy"
    );
    println!("quickstart OK");
}

//! The paper's electron benchmark, scaled down: the triangular-lattice
//! Hubbard model at `t = 1`, `U = 8.5`, half filling, with two conserved
//! U(1) charges `(N↑, N↓)` — the system whose richer block structure
//! motivates the sparse-sparse algorithm.
//!
//! ```text
//! cargo run --release -p tt-examples --bin hubbard_triangular [LX] [LY]
//! ```

use dmrg::{hubbard_ed, total_expectation, Dmrg};
use tt_blocks::Algorithm;
use tt_dist::Executor;
use tt_examples::{example_schedule, report_energy};
use tt_mps::{electron_filling, hubbard, BondKind, Electron, Lattice, Mps};

/// Superpose the even spread with spin-domain patterns of the same sector.
fn superposition_seed(n: usize, n_up: usize, n_dn: usize) -> Mps {
    let base = Mps::product_state(&Electron, &electron_filling(n, n_up, n_dn)).unwrap();
    let mut states = vec![base];
    if n_up + n_dn <= n {
        // domain wall: all ↑ left, all ↓ right
        let mut dw = vec![0usize; n];
        for (slot, s) in dw.iter_mut().take(n_up).enumerate() {
            let _ = slot;
            *s = 1;
        }
        for s in dw.iter_mut().skip(n - n_dn) {
            *s = if *s == 1 { 3 } else { 2 };
        }
        if dw.iter().filter(|&&s| s == 1 || s == 3).count() == n_up
            && dw.iter().filter(|&&s| s == 2 || s == 3).count() == n_dn
        {
            states.push(Mps::product_state(&Electron, &dw).unwrap());
        }
    }
    let mut acc = states[0].clone();
    for s in &states[1..] {
        acc = acc.sum(s).unwrap();
    }
    acc
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let lx: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let ly: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n = lx * ly;
    let (n_up, n_dn) = (n / 2, n / 2);
    println!("== Triangular Hubbard, {lx}x{ly} XC cylinder, t=1, U=8.5 ==");
    println!("filling: {n_up} up + {n_dn} down on {n} sites\n");

    let lattice = Lattice::triangular_cylinder_xc(lx, ly);
    let builder = hubbard(&lattice, 1.0, 8.5);
    let mut mpo = builder.build().expect("MPO builds");
    let k_raw = mpo.max_bond_dim();
    // the paper compresses the Hubbard MPO with an SVD cutoff of 1e-13,
    // reporting k = 26 for the 6x6 cylinder
    let exec = Executor::local();
    let k = mpo.compress(&exec, 1e-13).expect("compression");
    println!("MPO bond dimension: raw k = {k_raw}, compressed k = {k}");

    // Frustrated lattices trap two-site DMRG in local minima when started
    // from a single product state; seed from a superposition of fillings
    // instead, which widens the bond quantum-number structure.
    let mut psi = superposition_seed(n, n_up, n_dn);
    psi.normalize();
    report_energy("initial <H>", psi.expectation(&mpo).unwrap());

    // the sparse-sparse algorithm is the paper's choice for this system
    let solver = Dmrg::new(&exec, Algorithm::SparseSparse, &mpo);
    let schedule = example_schedule(&[16, 32, 48, 64, 64], 2);
    let run = solver.run(&mut psi, &schedule).expect("DMRG runs");
    report_energy("DMRG energy", run.energy);

    // conserved charges must survive the sweep
    let nu = total_expectation(&psi, &Electron, "Nup").unwrap();
    let nd = total_expectation(&psi, &Electron, "Ndn").unwrap();
    let docc = total_expectation(&psi, &Electron, "Nupdn").unwrap();
    println!("<Nup> = {nu:.6}, <Ndn> = {nd:.6}, <sum n_up n_dn> = {docc:.6}");

    // block structure: two charges → many more blocks than the spin system
    let (nblocks, largest, fill) = psi.block_stats(n / 2);
    println!("central tensor: {nblocks} blocks, largest extent {largest}, fill {fill:.3}");

    // bitstring ED cross-check (independent fermion-sign path)
    if n <= 8 {
        let bonds: Vec<(usize, usize)> = lattice.bonds_of(BondKind::Nearest).collect();
        let exact = hubbard_ed(n, &bonds, 1.0, 8.5, n_up, n_dn).expect("ED");
        report_energy("bitstring ED", exact);
        println!("|DMRG - ED| = {:.2e}", (run.energy - exact).abs());
    }
    println!("done");
}
